"""Thread-based runtime: every node is a real thread exchanging messages.

The simulated runtime in :mod:`repro.core.trainer` controls time explicitly;
this runtime instead runs every parameter server and worker in its own
Python thread, communicating through queues, so that delivery order is
decided by genuine scheduling non-determinism (plus optional random jitter).
It is the closest offline equivalent to the paper's gRPC deployment and is
used by the integration tests to check that the protocol tolerates true
concurrency, stragglers and Byzantine nodes without relying on the
simulator's bookkeeping.

The runtime is intentionally independent from :class:`NetworkSimulator`: it
has its own tiny transport (:class:`ThreadedTransport`) because the
semantics differ — here the wall clock is real.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.byzantine.base import ServerAttack, WorkerAttack
from repro.core.config import ClusterConfig
from repro.core.nodes import ServerNode, WorkerNode, max_pairwise_distance
from repro.data.datasets import Dataset
from repro.data.loader import DataLoader, partition_dataset
from repro.faults import FaultController, FaultSchedule
from repro.hetero import DEFAULT_PROFILE, HeteroSpec
from repro.aggregation import get_rule
from repro.obs.history import StepRecord, TrainingHistory
from repro.obs.telemetry import get_registry
from repro.obs.tracer import get_tracer
from repro.network.message import Message, MessageKind
from repro.nn.module import Module
from repro.nn.schedules import ConstantSchedule, LearningRateSchedule


class QuorumTimeout(RuntimeError):
    """Raised when a node cannot gather its quorum within the deadline."""


class ThreadedTransport:
    """In-process message transport with optional random delivery jitter.

    An optional :class:`~repro.faults.FaultController` is consulted once
    per message: crashed endpoints and active partitions suppress delivery,
    per-link overrides scale/extend the delivery delay, and probabilistic
    drops use the controller's hash-based sampling so the outcome is
    independent of thread scheduling.
    """

    def __init__(self, node_ids: Sequence[str], jitter: float = 0.0,
                 seed: int = 0,
                 fault_controller: Optional[FaultController] = None) -> None:
        self._lock = threading.Lock()
        self._conditions: Dict[str, threading.Condition] = {}
        self._buffers: Dict[str, Dict[Tuple[MessageKind, int], Dict[str, Message]]] = {}
        for node_id in node_ids:
            self._conditions[node_id] = threading.Condition()
            self._buffers[node_id] = defaultdict(dict)
        self._abandoned: Dict[str, set] = {node_id: set() for node_id in node_ids}
        self.jitter = jitter
        self.faults = fault_controller
        self._rng = np.random.default_rng(seed)
        self.messages_sent = 0
        self.messages_suppressed = 0

    def _deliver(self, message: Message) -> None:
        condition = self._conditions[message.recipient]
        with condition:
            if message.step in self._abandoned[message.recipient]:
                return  # the recipient sat this step out; discard late mail
            bucket = self._buffers[message.recipient][(message.kind, message.step)]
            # Keep only the first message per sender (deduplication).
            bucket.setdefault(message.sender, message)
            condition.notify_all()

    def abandon_step(self, node_id: str, step: int) -> None:
        """Drop (and keep dropping) ``node_id``'s mail for a sat-out step.

        A node that sits a step out never collects its quorums, so without
        this the peers' broadcasts for that step would sit in its buffers
        for the rest of the run — one model-sized payload per peer per
        skipped step.
        """
        condition = self._conditions[node_id]
        with condition:
            self._abandoned[node_id].add(step)
            buffers = self._buffers[node_id]
            for key in [key for key in buffers if key[1] == step]:
                del buffers[key]

    def send(self, sender: str, recipient: str, kind: MessageKind, step: int,
             payload: Optional[np.ndarray]) -> None:
        """Send a message; ``payload=None`` models a silent Byzantine node."""
        if payload is None:
            return
        if recipient not in self._conditions:
            raise KeyError(f"unknown recipient '{recipient}'")
        message = Message(sender=sender, recipient=recipient, kind=kind,
                          step=step, payload=np.asarray(payload, dtype=np.float64))
        with self._lock:
            self.messages_sent += 1
        delay = 0.0
        duplicate = False
        if self.jitter > 0:
            with self._lock:  # the generator is not thread-safe
                delay = float(self._rng.uniform(0.0, self.jitter))
        if self.faults is not None:
            decision = self.faults.on_send(sender, recipient, kind.value, step)
            if not decision.deliver:
                with self._lock:
                    self.messages_suppressed += 1
                return
            delay = decision.apply_to_delay(delay)
            duplicate = decision.duplicate
        self._schedule(message, delay)
        if duplicate:
            # Mirrors the simulator: the copy arrives one delay later and
            # the per-sender deduplication at the receiver absorbs it.
            self._schedule(Message(sender=sender, recipient=recipient,
                                   kind=kind, step=step,
                                   payload=message.payload), 2 * delay)

    def _schedule(self, message: Message, delay: float) -> None:
        if delay > 0:
            timer = threading.Timer(delay, self._deliver, args=(message,))
            timer.daemon = True
            timer.start()
        else:
            self._deliver(message)

    def broadcast(self, sender: str, recipients: Sequence[str], kind: MessageKind,
                  step: int, payload: Optional[np.ndarray]) -> None:
        for recipient in recipients:
            self.send(sender, recipient, kind, step, payload)

    def wait_quorum(self, recipient: str, kind: MessageKind, step: int,
                    quorum: int, timeout: float = 30.0) -> List[np.ndarray]:
        """Block until ``quorum`` distinct senders delivered, return payloads."""
        condition = self._conditions[recipient]
        deadline = time.monotonic() + timeout
        with condition:
            while True:
                bucket = self._buffers[recipient][(kind, step)]
                if len(bucket) >= quorum:
                    ordered = sorted(bucket.values(), key=lambda m: m.message_id)
                    payloads = [m.payload for m in ordered[:quorum]]
                    # Late messages for this (kind, step) are discarded.
                    del self._buffers[recipient][(kind, step)]
                    return payloads
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise QuorumTimeout(
                        f"{recipient} timed out waiting for {quorum} "
                        f"'{kind.value}' messages at step {step} "
                        f"(got {len(bucket)})"
                    )
                condition.wait(timeout=remaining)


@dataclass
class ThreadedNodeHandle:
    """Bookkeeping for one node thread."""

    node_id: str
    thread: threading.Thread
    error: List[BaseException] = field(default_factory=list)


class ThreadedClusterRuntime:
    """Run the GuanYu protocol with one thread per node.

    Parameters mirror :class:`repro.core.trainer.GuanYuTrainer`; the timing
    axis of the returned history is the *real* wall clock.

    Parameters
    ----------
    config:
        Cluster arithmetic (declared Byzantine counts size the quorums).
    model_fn:
        Factory producing identically-initialised models for every node.
    straggler_sleep:
        Optional mapping ``node_id -> seconds`` slept before each send,
        modelling slow nodes.
    jitter:
        Upper bound of the uniform random delivery delay added per message.
    fault_schedule:
        Optional declarative :class:`~repro.faults.FaultSchedule`.  The
        step gating the events is each node's *own* protocol step (nodes
        progress at different wall-clock rates); crashed nodes sit out
        their steps, nodes partitioned away from a full quorum stall, and
        the remaining nodes keep making progress on quorums alone.
    adversary:
        Optional stateful :class:`~repro.adversary.Adversary` controlling
        every actually-Byzantine node (mutually exclusive with the legacy
        per-node attacks).  Adversaries that observe the round's honest
        gradients are fed through an observation board: honest workers
        publish each gradient as they compute it and the Byzantine node
        threads block (bounded by ``quorum_timeout``) until the round is
        fully observable — the in-process equivalent of the paper's
        omniscient adversary reading every node's memory.
    sharding, hetero:
        Per-worker data views, identical to the simulated trainers: the
        legacy ``sharding`` strategies or a
        :class:`~repro.hetero.HeteroSpec` (Dirichlet/shard partitions,
        imbalance, drift, worker profiles).  The partition is a pure
        function of ``(seed, num_workers, hetero)``, so a scenario means
        the same per-worker data here as on the simulated clock.  Profile
        ``delay_multiplier``\\ s become real sleeps
        (``HETERO_STRAGGLER_UNIT`` seconds per unit of excess delay) on
        top of any explicit ``straggler_sleep``.
    """

    #: wall-clock seconds one unit of profile delay_multiplier excess adds
    HETERO_STRAGGLER_UNIT = 0.002

    def __init__(self, config: ClusterConfig, model_fn: Callable[[], Module],
                 train_dataset: Dataset, batch_size: int = 16,
                 schedule: Optional[LearningRateSchedule] = None,
                 worker_attack: Optional[WorkerAttack] = None,
                 num_attacking_workers: int = 0,
                 server_attack: Optional[ServerAttack] = None,
                 num_attacking_servers: int = 0,
                 gradient_rule_name: str = "multi_krum",
                 model_rule_name: str = "median",
                 jitter: float = 0.0,
                 straggler_sleep: Optional[Dict[str, float]] = None,
                 quorum_timeout: float = 60.0,
                 fault_schedule: Optional[FaultSchedule] = None,
                 adversary=None,
                 sharding: str = "iid",
                 hetero: Optional[HeteroSpec] = None,
                 seed: int = 0) -> None:
        if num_attacking_workers > config.num_byzantine_workers:
            raise ValueError("more attacking workers than declared Byzantine workers")
        if num_attacking_servers > config.num_byzantine_servers:
            raise ValueError("more attacking servers than declared Byzantine servers")
        from repro.adversary.engine import wire_attacks  # lazy: heavy import

        # Wiring first: mutual-exclusion errors must surface before any
        # dataset/transport work happens.
        (self.adversary_coordinator, worker_attacks, server_attacks,
         attacking_workers, attacking_servers) = wire_attacks(
            config=config, seed=seed,
            worker_attack=worker_attack,
            num_attacking_workers=num_attacking_workers,
            server_attack=server_attack,
            num_attacking_servers=num_attacking_servers,
            gradient_rule_name=gradient_rule_name, adversary=adversary)
        self.config = config
        self.schedule = schedule if schedule is not None else ConstantSchedule(0.001)
        self.quorum_timeout = quorum_timeout
        self.straggler_sleep = dict(straggler_sleep or {})

        worker_ids = config.worker_ids()
        server_ids = config.server_ids()
        self.fault_schedule = fault_schedule
        self.faults = None
        if fault_schedule:
            fault_schedule.validate(known_nodes=worker_ids + server_ids)
            self.faults = FaultController(fault_schedule, seed=seed)
        self.transport = ThreadedTransport(worker_ids + server_ids, jitter=jitter,
                                           seed=seed, fault_controller=self.faults)

        self.hetero = hetero
        shards = partition_dataset(train_dataset, len(worker_ids),
                                   sharding=sharding, hetero=hetero,
                                   seed=seed)
        profiles = [hetero.profile_for(index) if hetero else DEFAULT_PROFILE
                    for index in range(len(worker_ids))]
        for worker_id, profile in zip(worker_ids, profiles):
            if profile.delay_multiplier != 1.0:
                self.straggler_sleep[worker_id] = (
                    self.straggler_sleep.get(worker_id, 0.0)
                    + (profile.delay_multiplier - 1.0)
                    * self.HETERO_STRAGGLER_UNIT)

        self.adversary = adversary
        #: set only for adversaries that observe the round's gradients —
        #: publishing to a board nobody reads would just accumulate copies
        self._observation_board = None
        if adversary is not None and adversary.requires_observation \
                and attacking_workers:
            self.adversary_coordinator.enable_board(
                self._expected_publishers, timeout=quorum_timeout)
            self._observation_board = self.adversary_coordinator
        self._attacking_workers = attacking_workers

        # Seed constants match the simulated trainers (loader 1000+i,
        # worker rng 2000+i, server rng 3000+i): a scenario's per-worker
        # data stream and attack noise are the same cluster under every
        # runtime, which is what makes the cross-runtime heterogeneity
        # equivalence tests possible at all.
        self.workers = []
        for index, worker_id in enumerate(worker_ids):
            profile = profiles[index]
            loader = DataLoader(shards[index],
                                batch_size=profile.batch_size or batch_size,
                                seed=seed + 1000 + index)
            self.workers.append(WorkerNode(
                node_id=worker_id, model=model_fn(), loader=loader,
                model_aggregator=get_rule(model_rule_name,
                                          num_byzantine=config.num_byzantine_servers),
                attack=worker_attacks[worker_id],
                seed=seed + 2000 + index,
                local_steps=profile.local_steps,
                schedule=self.schedule))

        self.servers = []
        for index, server_id in enumerate(server_ids):
            self.servers.append(ServerNode(
                node_id=server_id, model=model_fn(),
                gradient_aggregator=get_rule(gradient_rule_name,
                                             num_byzantine=config.num_byzantine_workers),
                model_aggregator=get_rule(model_rule_name,
                                          num_byzantine=config.num_byzantine_servers),
                schedule=self.schedule,
                attack=server_attacks[server_id],
                seed=seed + 3000 + index))

        if self.faults is not None:
            for node in [*self.workers, *self.servers]:
                node.attack = self.faults.gate_attack(node.node_id, node.attack)

        self._history = TrainingHistory(label="guanyu-threaded",
                                        config={**config.as_dict(),
                                                "adversary": getattr(adversary,
                                                                     "name", None),
                                                "faults": (fault_schedule.to_dict()
                                                           if fault_schedule
                                                           else None),
                                                "hetero": (hetero.to_dict()
                                                           if hetero
                                                           else None)})
        self._record_lock = threading.Lock()
        self._step_times: Dict[int, float] = {}
        #: step → worker_id → loss; keyed (not appended) so the per-step
        #: mean can be taken in canonical worker order, independent of the
        #: order the racing worker threads happened to finish in
        self._step_losses: Dict[int, Dict[str, float]] = defaultdict(dict)
        self._start_time = 0.0

    # ------------------------------------------------------------------ #
    @property
    def correct_servers(self) -> List[ServerNode]:
        return [server for server in self.servers if not server.is_byzantine]

    def global_parameters(self) -> np.ndarray:
        vectors = [server.current_parameters() for server in self.correct_servers]
        return np.median(np.stack(vectors), axis=0)

    # ------------------------------------------------------------------ #
    def _expected_publishers(self, step: int) -> List[str]:
        """Honest workers whose gradients the adversary can observe at a step.

        Crashed or quorum-starved workers sit the step out and never
        compute a gradient, so the observation board must not wait for
        them — the participation fixpoint is the same one the runtimes use
        to decide who stalls.
        """
        honest = [worker_id for worker_id in self.config.worker_ids()
                  if worker_id not in self._attacking_workers]
        if self.faults is None:
            return honest
        workers, _ = self.faults.participating_nodes(
            self.config.worker_ids(), self.config.server_ids(),
            self.config.model_quorum, self.config.gradient_quorum, step)
        participating = set(workers)
        return [worker_id for worker_id in honest
                if worker_id in participating]

    # ------------------------------------------------------------------ #
    def _maybe_straggle(self, node_id: str) -> None:
        delay = self.straggler_sleep.get(node_id, 0.0)
        if delay > 0:
            time.sleep(delay)

    def _sits_out(self, node_id: str, step: int) -> bool:
        """Whether faults force ``node_id`` to sit out ``step``.

        Crashed nodes do nothing for the step; nodes that faults leave
        short of a quorum — directly or transitively through other stalled
        nodes — sit it out too, judged by the same participation fixpoint
        the simulated trainer uses (see
        :meth:`repro.faults.FaultController.participating_nodes`), so no
        node ever blocks on a peer that is sitting the step out.  Skipped
        steps cost no wall-clock: the node's mail for the step is
        discarded and its next ``wait_quorum`` simply blocks until its
        peers reach that step.
        """
        if self.faults is None:
            return False
        self.faults.on_step(step)
        workers, servers = self.faults.participating_nodes(
            self.config.worker_ids(), self.config.server_ids(),
            self.config.model_quorum, self.config.gradient_quorum, step)
        if node_id in workers or node_id in servers:
            return False
        self.transport.abandon_step(node_id, step)
        return True

    def _worker_loop(self, worker: WorkerNode, num_steps: int) -> None:
        server_ids = self.config.server_ids()
        tracer = get_tracer()
        registry = get_registry()
        for step in range(num_steps):
            if self._sits_out(worker.node_id, step):
                continue
            with tracer.span("thr.worker.gather", step=step,
                             node=worker.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="threads", phase="gather"):
                models = self.transport.wait_quorum(
                    worker.node_id, MessageKind.MODEL_TO_WORKER, step,
                    quorum=self.config.model_quorum,
                    timeout=self.quorum_timeout)
            with tracer.span("thr.worker.compute", step=step,
                             node=worker.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="threads", phase="compute"):
                result = worker.compute_gradient(models, step)
            if not worker.is_byzantine:
                board = self._observation_board
                if board is not None \
                        and board.adversary.observation_needed(step):
                    # The omniscient adversary reads this worker's memory
                    # (skipped on rounds whose plan ignores the
                    # observation, e.g. a sleeper's dormant window — no
                    # point copying gradients nobody will read).
                    board.publish(worker.node_id, step, result.gradient)
                with self._record_lock:
                    self._step_losses[step][worker.node_id] = result.loss
            self._maybe_straggle(worker.node_id)
            for server_id in server_ids:
                payload = worker.outgoing_gradient(result, step,
                                                   recipient=server_id)
                self.transport.send(worker.node_id, server_id,
                                    MessageKind.GRADIENT_TO_SERVER, step, payload)

    def _server_loop(self, server: ServerNode, num_steps: int) -> None:
        start_time = self._start_time
        worker_ids = self.config.worker_ids()
        server_ids = self.config.server_ids()
        tracer = get_tracer()
        registry = get_registry()
        for step in range(num_steps):
            if self._sits_out(server.node_id, step):
                continue
            self._maybe_straggle(server.node_id)
            # Phase 1: broadcast the current model to the workers.
            with tracer.span("thr.server.broadcast", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="threads", phase="broadcast"):
                for worker_id in worker_ids:
                    payload = server.outgoing_model(step, recipient=worker_id)
                    self.transport.send(server.node_id, worker_id,
                                        MessageKind.MODEL_TO_WORKER, step,
                                        payload)
            # Phase 2: gather gradients and update (Byzantine servers skip the
            # honest computation — whatever they hold is corrupted on send).
            with tracer.span("thr.server.gather", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="threads", phase="gather"):
                gradients = self.transport.wait_quorum(
                    server.node_id, MessageKind.GRADIENT_TO_SERVER, step,
                    quorum=self.config.gradient_quorum,
                    timeout=self.quorum_timeout)
            with tracer.span("thr.server.aggregate", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="threads", phase="aggregate"):
                server.apply_gradients(gradients, step)
            # Phase 3: exchange models between servers and take the median.
            with tracer.span("thr.server.apply", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="threads", phase="apply"):
                for server_id in server_ids:
                    payload = server.outgoing_model(step, recipient=server_id) \
                        if server_id != server.node_id \
                        else server.current_parameters()
                    self.transport.send(server.node_id, server_id,
                                        MessageKind.MODEL_TO_SERVER, step,
                                        payload)
                models = self.transport.wait_quorum(
                    server.node_id, MessageKind.MODEL_TO_SERVER, step,
                    quorum=self.config.model_quorum,
                    timeout=self.quorum_timeout)
                server.merge_models(models)
            with self._record_lock:
                self._step_times[step] = max(self._step_times.get(step, 0.0),
                                             time.perf_counter() - start_time)

    # ------------------------------------------------------------------ #
    def run(self, num_steps: int) -> TrainingHistory:
        """Run ``num_steps`` protocol steps and return the training history.

        Raises the first node exception encountered (e.g. a quorum timeout),
        so failures surface in tests instead of silently producing an empty
        history.
        """
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        self._start_time = time.perf_counter()
        handles: List[ThreadedNodeHandle] = []

        def launch(target, node) -> None:
            errors: List[BaseException] = []

            def runner() -> None:
                try:
                    target(node, num_steps)
                except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                    errors.append(exc)

            thread = threading.Thread(target=runner, daemon=True,
                                      name=f"node-{node.node_id}")
            handles.append(ThreadedNodeHandle(node_id=node.node_id, thread=thread,
                                              error=errors))
            thread.start()

        for worker in self.workers:
            launch(self._worker_loop, worker)
        for server in self.servers:
            launch(self._server_loop, server)

        for handle in handles:
            handle.thread.join(timeout=self.quorum_timeout * (num_steps + 1))
        for handle in handles:
            if handle.error:
                raise handle.error[0]
            if handle.thread.is_alive():
                raise QuorumTimeout(f"node {handle.node_id} did not terminate")

        spread = max_pairwise_distance(
            [server.current_parameters() for server in self.correct_servers])
        worker_order = [worker.node_id for worker in self.workers]
        for step in range(num_steps):
            by_worker = self._step_losses.get(step, {})
            losses = [by_worker[worker_id] for worker_id in worker_order
                      if worker_id in by_worker]
            self._history.add(StepRecord(
                step=step,
                simulated_time=self._step_times.get(step, 0.0),
                train_loss=float(np.mean(losses)) if losses else None,
                max_server_spread=spread if step == num_steps - 1 else None,
                learning_rate=self.schedule(step),
            ))
        return self._history
