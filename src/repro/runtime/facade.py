"""One front door for executing a scenario: :func:`repro.runtime.run`.

Four execution runtimes grew side by side — the sequential simulated
trainers, the vectorised batched runtime, the threaded runtime and the
process-cluster runtime — each with its own entrypoint.  This module
collapses them behind a single call::

    from repro.runtime import run
    result = run(spec)                 # ScenarioResult
    result.history                     # TrainingHistory
    result.runtime                     # "sequential" | "batched" | ...

Dispatch is driven entirely by the spec: ``ScenarioSpec.runtime`` when
explicit (``"batched"``, ``"cluster"``), the trainer's legacy default
otherwise (``guanyu_threaded`` → threaded, everything else → the
sequential simulator).  The run executes under the spec's kernel backend
(``ScenarioSpec.kernels``, via :func:`repro.kernels.use_backend`) and,
when given a store, is served from cache / persisted under the spec's
content address exactly like the campaign engine does.

This module must not import :mod:`repro.campaign` (or anything that
imports it) at module level — campaign specs import
:mod:`repro.runtime.cost`, so the package has to stay import-light.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.kernels import use_backend
from repro.obs.telemetry import get_registry
from repro.obs.tracer import use_tracer

if TYPE_CHECKING:  # pragma: no cover - type-only imports (cycles otherwise)
    from repro.campaign.spec import ScenarioSpec
    from repro.campaign.store import ResultStore
    from repro.obs.history import TrainingHistory
    from repro.obs.tracer import Tracer

#: runtime kinds :func:`resolve_runtime` can return
RUNTIME_KINDS = ("sequential", "batched", "threaded", "cluster")


@dataclass
class ScenarioResult:
    """What :func:`run` produced for one scenario."""

    spec: "ScenarioSpec"
    history: "TrainingHistory"
    #: ``"ran"`` (freshly executed) or ``"cached"`` (served from the store)
    status: str
    #: resolved runtime kind — one of :data:`RUNTIME_KINDS`
    runtime: str
    #: content address in the store (``None`` when no store was given)
    store_key: Optional[str] = None
    duration_seconds: float = 0.0


def resolve_runtime(spec: "ScenarioSpec") -> str:
    """The runtime kind a spec dispatches to (without running anything)."""
    if spec.runtime is not None:
        return spec.runtime  # "batched" | "cluster" (validated by the spec)
    if spec.trainer == "guanyu_threaded":
        return "threaded"
    return "sequential"


def run(spec: "ScenarioSpec", *, store: Optional["ResultStore"] = None,
        tracer: Optional["Tracer"] = None) -> ScenarioResult:
    """Validate and execute one scenario on the runtime it describes.

    Parameters
    ----------
    spec:
        A :class:`~repro.campaign.spec.ScenarioSpec`; validated here, so
        callers can hand over unchecked specs.
    store:
        Optional :class:`~repro.campaign.store.ResultStore`.  A cache hit
        under the spec's content address returns ``status="cached"``
        without executing; a fresh run is persisted before returning.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` made ambient for the
        duration of the run.  ``None`` leaves the caller's ambient tracer
        (:func:`repro.obs.tracer.get_tracer`) in effect.
    """
    spec.validate()
    kind = resolve_runtime(spec)

    store_key: Optional[str] = None
    if store is not None:
        store_key = spec.spec_hash()
        hit = store.contains(store_key)
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_runtime_cache_total",
                         result="hit" if hit else "miss")
        if hit:
            stored = store.get(store_key)
            # The hash excludes the name: relabel for this caller's view.
            stored.history.label = spec.name
            return ScenarioResult(spec=spec, history=stored.history,
                                  status="cached", runtime=kind,
                                  store_key=store_key, duration_seconds=0.0)

    started = time.perf_counter()
    tracer_scope = use_tracer(tracer) if tracer is not None else _noop()
    with tracer_scope, use_backend(spec.kernels):
        history = _execute(spec, kind)
    duration = time.perf_counter() - started
    if store is not None:
        store_key = store.put(spec, history, duration_seconds=duration)
    return ScenarioResult(spec=spec, history=history, status="ran",
                          runtime=kind, store_key=store_key,
                          duration_seconds=duration)


def _execute(spec: "ScenarioSpec", kind: str) -> "TrainingHistory":
    if kind == "batched":
        from repro.batch import run_batched_scenarios  # lazy: import cycle

        return run_batched_scenarios([spec])[0]
    # Sequential, threaded and cluster construction lives with the
    # campaign engine's trainer factory.
    from repro.campaign.engine import _execute_validated  # lazy: cycle

    return _execute_validated(spec)


class _noop:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


def _warn_deprecated(old: str, replacement: str) -> None:
    """One shared shim warning so every legacy entrypoint reads the same."""
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning, stacklevel=3)
