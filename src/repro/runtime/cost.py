"""Computation cost model for the simulated clock.

The paper's Figure 3(b)/(d) (accuracy versus *time*) depends on three cost
components on top of the network delays:

1. gradient computation at the workers (dominated by the backward pass,
   roughly linear in batch size × parameter count);
2. robust aggregation at servers and workers (Multi-Krum is
   ``O(n² d)``, the coordinate-wise median ``O(n d log n)``);
3. the runtime overhead of leaving TensorFlow's dataflow graph: converting
   tensors to numpy arrays, protobuf serialisation and gRPC framing
   (Section 4 "a caveat is worth noting here").  This per-message overhead is
   what makes *vanilla GuanYu* ~65 % slower than vanilla TF even with zero
   Byzantine nodes; it is modelled by ``serialization_seconds_per_mb``.

The default :data:`GRID5000_LIKE` constants are calibrated so that the
*relative* overheads of the paper (≈65 % for the re-implementation, ≈30 %
more for Byzantine resilience) emerge from the simulation; absolute values
are not meaningful outside the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CostModel:
    """Linear cost model for node-local computation (all times in seconds)."""

    #: seconds per (sample × million parameters) for one gradient computation
    gradient_seconds_per_sample_mparam: float = 2.0e-4
    #: fixed per-batch overhead of a gradient computation
    gradient_fixed_seconds: float = 5.0e-3
    #: seconds per (n² × million parameters) for Multi-Krum style rules
    krum_seconds_per_n2_mparam: float = 1.0e-4
    #: seconds per (n log n × million parameters) for median style rules
    median_seconds_per_nlogn_mparam: float = 5.0e-5
    #: seconds per million parameters for an SGD model update
    update_seconds_per_mparam: float = 1.0e-3
    #: serialisation / framework-context-switch overhead, per megabyte sent
    serialization_seconds_per_mb: float = 2.5e-3
    #: fixed per-message overhead (protobuf + gRPC call setup)
    per_message_overhead_seconds: float = 2.0e-4

    # ------------------------------------------------------------------ #
    def gradient_time(self, batch_size: int, num_parameters: int) -> float:
        """Time for one worker to compute a mini-batch gradient."""
        mparams = num_parameters / 1e6
        return self.gradient_fixed_seconds + (
            self.gradient_seconds_per_sample_mparam * batch_size * mparams
        )

    def krum_time(self, num_inputs: int, num_parameters: int) -> float:
        """Time for a Multi-Krum aggregation of ``num_inputs`` gradients."""
        mparams = num_parameters / 1e6
        return self.krum_seconds_per_n2_mparam * num_inputs ** 2 * mparams

    def median_time(self, num_inputs: int, num_parameters: int) -> float:
        """Time for a coordinate-wise median over ``num_inputs`` vectors."""
        mparams = num_parameters / 1e6
        return (self.median_seconds_per_nlogn_mparam
                * num_inputs * max(np.log2(max(num_inputs, 2)), 1.0) * mparams)

    def mean_time(self, num_inputs: int, num_parameters: int) -> float:
        """Time for a plain averaging aggregation (cheapest rule)."""
        mparams = num_parameters / 1e6
        return 0.2 * self.median_seconds_per_nlogn_mparam * num_inputs * mparams

    def aggregation_time(self, rule_name: str, num_inputs: int,
                         num_parameters: int) -> float:
        """Dispatch on the aggregation rule used."""
        if rule_name in ("multi_krum", "krum", "bulyan"):
            return self.krum_time(num_inputs, num_parameters)
        if rule_name in ("median", "marginal_median", "geometric_median",
                         "trimmed_mean"):
            return self.median_time(num_inputs, num_parameters)
        return self.mean_time(num_inputs, num_parameters)

    def update_time(self, num_parameters: int) -> float:
        """Time for a parameter server to apply one SGD update."""
        return self.update_seconds_per_mparam * num_parameters / 1e6

    def serialization_time(self, num_parameters: int) -> float:
        """Per-message tensor→numpy→protobuf serialisation overhead."""
        megabytes = 4.0 * num_parameters / 1e6
        return (self.per_message_overhead_seconds
                + self.serialization_seconds_per_mb * megabytes)


#: cost model loosely calibrated to the paper's Grid5000 CPU nodes
GRID5000_LIKE = CostModel()

#: zero-cost model (pure protocol-logic experiments, e.g. unit tests)
INSTANT = CostModel(
    gradient_seconds_per_sample_mparam=0.0,
    gradient_fixed_seconds=0.0,
    krum_seconds_per_n2_mparam=0.0,
    median_seconds_per_nlogn_mparam=0.0,
    update_seconds_per_mparam=0.0,
    serialization_seconds_per_mb=0.0,
    per_message_overhead_seconds=0.0,
)
