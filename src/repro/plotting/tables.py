"""Aligned text tables for experiment summaries."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.history import TrainingHistory
from repro.metrics.throughput import (
    throughput_updates_per_second,
    time_to_accuracy,
)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of dict rows as an aligned, pipe-separated text table.

    Parameters
    ----------
    rows:
        Sequence of dictionaries; missing keys render as empty cells.
    columns:
        Column order (defaults to the keys of the first row).
    float_format:
        Format string applied to float cells.
    """
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render_cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render_cell(row.get(column)) for column in columns] for row in rows]
    widths = [max(len(str(column)), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = " | ".join(str(column).ljust(width)
                        for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [" | ".join(cell.ljust(width) for cell, width in zip(line, widths))
            for line in rendered]
    return "\n".join([header, separator] + body)


def histories_summary_table(histories: Dict[str, TrainingHistory],
                            target_accuracy: Optional[float] = None) -> str:
    """Summary table of several runs (the row format of Figure 3 summaries)."""
    rows: List[Dict[str, object]] = []
    for name, history in histories.items():
        row: Dict[str, object] = {
            "system": name,
            "final_accuracy": history.final_accuracy(),
            "best_accuracy": history.best_accuracy(),
            "updates": history.total_steps(),
            "sim_time_s": history.total_time(),
            "updates_per_s": throughput_updates_per_second(history),
        }
        if target_accuracy is not None:
            row["time_to_target"] = time_to_accuracy(history, target_accuracy)
        rows.append(row)
    return format_table(rows)
