"""ASCII dashboard for the live-telemetry endpoint (``repro monitor``).

The dashboard is a pure function of parsed ``/metrics`` families (see
:func:`repro.obs.telemetry.parse_prometheus_text`) plus the ``/status``
JSON document, so it renders identically from a live poll, a captured
snapshot, or a test fixture.  The polling loop, screen clearing and
throughput-rate bookkeeping live in the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.plotting.ascii import sparkline
from repro.plotting.tables import format_table

__all__ = ["render_dashboard", "scenarios_completed"]


def _samples(families: Dict[str, Dict[str, Any]],
             name: str) -> List[Dict[str, Any]]:
    family = families.get(name)
    return list(family["samples"]) if family else []


def _histogram_stats(families: Dict[str, Dict[str, Any]], name: str,
                     group_by: Sequence[str]
                     ) -> Dict[Tuple[str, ...], Dict[str, float]]:
    """Fold a histogram family's ``_sum``/``_count`` samples per label group."""
    stats: Dict[Tuple[str, ...], Dict[str, float]] = {}
    for sample in _samples(families, name):
        key = tuple(sample["labels"].get(label, "") for label in group_by)
        entry = stats.setdefault(key, {"sum": 0.0, "count": 0.0})
        if sample["name"].endswith("_sum"):
            entry["sum"] += sample["value"]
        elif sample["name"].endswith("_count"):
            entry["count"] += sample["value"]
    return stats


def scenarios_completed(families: Dict[str, Dict[str, Any]]) -> float:
    """Total finished scenarios (all statuses) — the throughput numerator."""
    return sum(sample["value"]
               for sample in _samples(families,
                                      "repro_campaign_scenarios_total"))


def _progress_section(status: Dict[str, Any], width: int) -> List[str]:
    total = status.get("total")
    if not isinstance(total, (int, float)) or total <= 0:
        return []
    completed = float(status.get("completed", 0))
    bar_width = max(10, width - 24)
    filled = int(round(min(completed / total, 1.0) * bar_width))
    bar = "#" * filled + "." * (bar_width - filled)
    lines = [f"progress  [{bar}] {int(completed)}/{int(total)}"]
    counts = status.get("counts") or {}
    if counts:
        parts = [f"{key}={counts[key]}" for key in ("ran", "cached", "failed")
                 if key in counts]
        elapsed = status.get("elapsed_seconds")
        if isinstance(elapsed, (int, float)):
            parts.append(f"elapsed={elapsed:.1f}s")
        lines.append("          " + "  ".join(parts))
    return lines


def _phase_section(families: Dict[str, Dict[str, Any]]) -> List[str]:
    stats = _histogram_stats(families, "repro_step_phase_seconds",
                             ("runtime", "phase"))
    rows = []
    for (runtime, phase), entry in sorted(stats.items()):
        count = entry["count"]
        if not count:
            continue
        rows.append({"runtime": runtime, "phase": phase, "calls": int(count),
                     "total_s": entry["sum"],
                     "mean_ms": entry["sum"] / count * 1000.0})
    if not rows:
        return []
    return ["", "Step phases:", format_table(rows, float_format="{:.3f}")]


def _node_section(families: Dict[str, Dict[str, Any]]) -> List[str]:
    up = {s["labels"].get("node", ""): s["value"]
          for s in _samples(families, "repro_cluster_node_up")}
    if not up:
        return []
    incarnations = {s["labels"].get("node", ""): s["value"]
                    for s in _samples(families,
                                      "repro_cluster_node_incarnations")}
    respawns = {s["labels"].get("node", ""): s["value"]
                for s in _samples(families, "repro_cluster_respawns_total")}
    rtt = _histogram_stats(families, "repro_cluster_probe_rtt_seconds",
                           ("node",))
    rows = []
    for node in sorted(up):
        entry = rtt.get((node,), {})
        count = entry.get("count", 0.0)
        rows.append({
            "node": node,
            "up": "yes" if up[node] else "NO",
            "incarnations": int(incarnations.get(node, 1)),
            "respawns": int(respawns.get(node, 0)),
            "probe_rtt_ms": (entry["sum"] / count * 1000.0) if count else None,
        })
    return ["", "Cluster nodes:", format_table(rows, float_format="{:.2f}")]


def _gar_section(families: Dict[str, Dict[str, Any]]) -> List[str]:
    decisions: Dict[str, float] = {}
    for sample in _samples(families, "repro_gar_decisions_total"):
        rule = sample["labels"].get("rule", "")
        decisions[rule] = decisions.get(rule, 0.0) + sample["value"]
    if not decisions:
        return []
    offered = {s["labels"].get("rule", ""): s["value"]
               for s in _samples(families,
                                 "repro_gar_attackers_offered_total")}
    selected = {s["labels"].get("rule", ""): s["value"]
                for s in _samples(families,
                                  "repro_gar_attackers_selected_total")}
    acceptance = {s["labels"].get("rule", ""): s["value"]
                  for s in _samples(families, "repro_gar_attacker_acceptance")}
    rows = []
    for rule in sorted(decisions):
        rows.append({"rule": rule, "decisions": int(decisions[rule]),
                     "attackers_offered": int(offered.get(rule, 0)),
                     "attackers_selected": int(selected.get(rule, 0)),
                     "acceptance": acceptance.get(rule)})
    return ["", "GAR decisions:", format_table(rows, float_format="{:.3f}")]


def _cache_line(families: Dict[str, Dict[str, Any]]) -> List[str]:
    by_result = {s["labels"].get("result", ""): s["value"]
                 for s in _samples(families, "repro_campaign_cache_total")}
    if not by_result:
        return []
    hit = int(by_result.get("hit", 0))
    miss = int(by_result.get("miss", 0))
    return [f"cache     hit={hit}  miss={miss}"]


def render_dashboard(families: Dict[str, Dict[str, Any]],
                     status: Optional[Dict[str, Any]] = None, *,
                     throughput: Sequence[float] = (),
                     width: int = 72) -> str:
    """Render one dashboard frame from parsed metrics + status document.

    ``throughput`` is the caller-maintained history of completion rates
    (scenarios/second between successive polls); the most recent value is
    shown as the current rate, the whole sequence as a sparkline.
    """
    status = status or {}
    title = str(status.get("command") or "run")
    name = status.get("campaign") or status.get("scenario")
    if name:
        title += f" '{name}'"
    lines = [f"repro monitor — {title}", "=" * min(width, 78)]
    lines += _progress_section(status, width)
    if throughput:
        spark = sparkline(list(throughput), width=max(10, width - 32))
        lines.append(f"rate      {throughput[-1]:6.2f} scenario/s |{spark}|")
    lines += _cache_line(families)
    lines += _phase_section(families)
    lines += _node_section(families)
    lines += _gar_section(families)
    if len(lines) == 2:
        lines.append("(no samples yet)")
    return "\n".join(lines)
