"""ASCII rendering of trace spans: phase tables and span timelines.

Consumes :class:`repro.obs.TraceEvent` records (or their dict form from a
JSONL file) and renders them in the same terminal-friendly style as the
rest of :mod:`repro.plotting` — the backend of the ``repro trace`` and
``repro report`` subcommands.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import TraceEvent
from repro.plotting.tables import format_table

__all__ = ["phase_breakdown_rows", "render_phase_breakdown",
           "render_span_timeline"]


def _spans(records: Sequence[TraceEvent]) -> List[TraceEvent]:
    return [record for record in records
            if record.kind == "span" and record.dur is not None]


def phase_breakdown_rows(records: Sequence[TraceEvent]) -> List[Dict]:
    """Aggregate spans by name into table rows sorted by total time.

    Rows also fold in events' embedded ``trace_summary`` attributes when
    present, so a sweep trace whose per-step spans ran in pool subprocesses
    (only summaries travel back) still yields a full phase breakdown.

    Merged multi-source traces — e.g. a cluster run, where every node
    process forwards both its raw spans *and* a per-node summary event,
    all tagged with a ``source`` — are not double-counted: a summary whose
    record's ``source`` already contributed raw spans is skipped.
    """
    totals: Dict[str, Dict[str, float]] = {}

    def bucket(name: str) -> Dict[str, float]:
        return totals.setdefault(name, {"count": 0, "total_s": 0.0})

    raw_sources = set()
    for record in _spans(records):
        entry = bucket(record.name)
        entry["count"] += 1
        entry["total_s"] += record.dur
        if record.source is not None:
            raw_sources.add(record.source)
    for record in records:
        if record.kind != "event":
            continue
        summary = record.attrs.get("trace_summary")
        if not isinstance(summary, dict):
            continue
        source = (record.source if record.source is not None
                  else record.attrs.get("source"))
        if source is not None and source in raw_sources:
            continue  # that process's raw spans are already counted above
        for name, stats in (summary.get("spans") or {}).items():
            entry = bucket(name)
            entry["count"] += int(stats.get("count", 0))
            entry["total_s"] += float(stats.get("total_s", 0.0))

    grand_total = sum(entry["total_s"] for entry in totals.values())
    rows = []
    for name in sorted(totals, key=lambda key: -totals[key]["total_s"]):
        entry = totals[name]
        count = int(entry["count"])
        rows.append({
            "phase": name,
            "count": count,
            "total_s": entry["total_s"],
            "mean_ms": (entry["total_s"] / count * 1000.0) if count else 0.0,
            "share": (entry["total_s"] / grand_total
                      if grand_total > 0 else 0.0),
        })
    return rows


def render_phase_breakdown(records: Sequence[TraceEvent]) -> str:
    """Aligned per-phase table: count, total seconds, mean ms, share."""
    rows = phase_breakdown_rows(records)
    if not rows:
        return "(no spans in trace)"
    for row in rows:
        row["share"] = f"{row['share']:.1%}"
    return format_table(rows, columns=["phase", "count", "total_s",
                                       "mean_ms", "share"],
                        float_format="{:.4f}")


def render_span_timeline(records: Sequence[TraceEvent], width: int = 64,
                         max_rows: int = 30,
                         node: Optional[str] = None) -> str:
    """One row per span name, painted across a common time axis.

    Each row shows where that span's occurrences fall between the first
    span start and the last span end in the trace (``█`` = active).  With
    many distinct names only the ``max_rows`` largest-by-total-time rows
    are kept, and a trailing note says how many were elided.
    """
    spans = _spans(records)
    if node is not None:
        spans = [span for span in spans if span.node == node]
    if not spans:
        return "(no spans in trace)"

    start = min(span.ts for span in spans)
    end = max(span.ts + span.dur for span in spans)
    extent = max(end - start, 1e-12)

    by_name: Dict[str, List[TraceEvent]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    ordered = sorted(by_name,
                     key=lambda name: -sum(s.dur for s in by_name[name]))
    elided = max(len(ordered) - max_rows, 0)
    ordered = ordered[:max_rows]

    label_width = max(len(name) for name in ordered)
    lines = [f"timeline: {extent:.4f}s across {len(spans)} span(s)"
             + (f" on {node}" if node else "")]
    for name in ordered:
        cells = [" "] * width
        for span in by_name[name]:
            first = int((span.ts - start) / extent * (width - 1))
            last = int((span.ts + span.dur - start) / extent * (width - 1))
            for index in range(first, last + 1):
                cells[index] = "█"
        total = sum(span.dur for span in by_name[name])
        lines.append(f"{name.ljust(label_width)} |{''.join(cells)}| "
                     f"{total:.4f}s")
    if elided:
        lines.append(f"... {elided} more span name(s) elided "
                     f"(raise max_rows to see them)")
    return "\n".join(lines)
