"""ASCII line charts for accuracy/loss curves.

The charts intentionally mimic the layout of the paper's figures: an x-axis
of model updates (or simulated seconds) and a y-axis of top-1 accuracy, with
one marker character per plotted system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.tracker import TrainingHistory

#: marker characters assigned to successive series
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a sequence of values in [0, 1]-ish range as a one-line sparkline."""
    values = [v for v in values if v is not None and not np.isnan(v)]
    if not values:
        return ""
    levels = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    picked = values[:: max(1, len(values) // width)][:width]
    chars = []
    for value in picked:
        index = int(round((value - low) / span * (len(levels) - 1)))
        chars.append(levels[index])
    return "".join(chars)


class AsciiChart:
    """A fixed-size character grid with axes, used to draw line charts."""

    def __init__(self, width: int = 70, height: int = 18,
                 x_label: str = "x", y_label: str = "y") -> None:
        if width < 20 or height < 6:
            raise ValueError("chart must be at least 20x6 characters")
        self.width = width
        self.height = height
        self.x_label = x_label
        self.y_label = y_label
        self._series: List[Tuple[str, np.ndarray, np.ndarray, str]] = []

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float],
                   marker: Optional[str] = None) -> None:
        """Add one curve; NaN y-values are dropped."""
        xs = np.asarray(list(xs), dtype=np.float64)
        ys = np.asarray(list(ys), dtype=np.float64)
        if xs.shape != ys.shape:
            raise ValueError("xs and ys must have the same length")
        keep = ~np.isnan(ys)
        xs, ys = xs[keep], ys[keep]
        if xs.size == 0:
            return
        if marker is None:
            marker = _MARKERS[len(self._series) % len(_MARKERS)]
        self._series.append((name, xs, ys, marker))

    # ------------------------------------------------------------------ #
    def _bounds(self) -> Tuple[float, float, float, float]:
        all_x = np.concatenate([xs for _, xs, _, _ in self._series])
        all_y = np.concatenate([ys for _, _, ys, _ in self._series])
        x_min, x_max = float(all_x.min()), float(all_x.max())
        y_min, y_max = float(all_y.min()), float(all_y.max())
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0
        return x_min, x_max, y_min, y_max

    def render(self) -> str:
        """Render the chart (axes, curves, legend) to a multi-line string."""
        if not self._series:
            return "(empty chart)"
        x_min, x_max, y_min, y_max = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        for _, xs, ys, marker in self._series:
            for x, y in zip(xs, ys):
                column = int(round((x - x_min) / (x_max - x_min) * (self.width - 1)))
                row = int(round((y - y_min) / (y_max - y_min) * (self.height - 1)))
                grid[self.height - 1 - row][column] = marker

        lines = []
        top_label = f"{y_max:.3f} |"
        bottom_label = f"{y_min:.3f} |"
        pad = max(len(top_label), len(bottom_label))
        for index, row in enumerate(grid):
            if index == 0:
                prefix = top_label.rjust(pad)
            elif index == self.height - 1:
                prefix = bottom_label.rjust(pad)
            else:
                prefix = "|".rjust(pad)
            lines.append(prefix + "".join(row))
        lines.append(" " * pad + "-" * self.width)
        x_axis = f"{x_min:.2f}".ljust(self.width - 10) + f"{x_max:.2f}"
        lines.append(" " * pad + x_axis)
        lines.append(" " * pad + f"({self.x_label} → ; {self.y_label} ↑)")
        legend = "   ".join(f"{marker}={name}" for name, _, _, marker in self._series)
        lines.append(" " * pad + legend)
        return "\n".join(lines)


def render_histories(histories: Dict[str, TrainingHistory], x_axis: str = "steps",
                     width: int = 70, height: int = 18) -> str:
    """Render accuracy curves of several training histories on one chart.

    Parameters
    ----------
    histories:
        Mapping from system name to its :class:`TrainingHistory`.
    x_axis:
        ``"steps"`` (Figure 3a/3c, Figure 4) or ``"time"`` (Figure 3b/3d).
    """
    if x_axis not in ("steps", "time"):
        raise ValueError("x_axis must be 'steps' or 'time'")
    chart = AsciiChart(width=width, height=height,
                       x_label="model updates" if x_axis == "steps" else "simulated s",
                       y_label="top-1 accuracy")
    for name, history in histories.items():
        xs = history.steps() if x_axis == "steps" else history.times()
        chart.add_series(name, xs, history.accuracies())
    return chart.render()
