"""Terminal-friendly rendering of experiment results.

The reproduction environment has no display and no plotting libraries, so
the figures of the paper are rendered as ASCII charts and aligned text
tables: good enough to eyeball convergence curves, orderings and collapses
directly in a terminal or a CI log.
"""

from repro.plotting.ascii import AsciiChart, render_histories, sparkline
from repro.plotting.monitor import render_dashboard, scenarios_completed
from repro.plotting.tables import format_table, histories_summary_table
from repro.plotting.timeline import (
    phase_breakdown_rows,
    render_phase_breakdown,
    render_span_timeline,
)

__all__ = [
    "AsciiChart",
    "sparkline",
    "render_histories",
    "format_table",
    "histories_summary_table",
    "phase_breakdown_rows",
    "render_phase_breakdown",
    "render_span_timeline",
    "render_dashboard",
    "scenarios_completed",
]
