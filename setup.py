"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments where the ``wheel``
package (needed by PEP 660 editable builds) is unavailable.
"""

from setuptools import setup

setup()
