"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments where the ``wheel``
package (needed by PEP 660 editable builds) is unavailable.  The CI
``packaging`` job installs the package for real (no ``PYTHONPATH=src``)
and smoke-tests ``import repro`` + the console entry point, so drift
between this shim, ``pyproject.toml`` and the ``src/`` layout fails fast.
"""

from setuptools import setup

setup()
