"""The one front door: ``repro.runtime.run`` dispatch and the legacy shims.

Every runtime — sequential simulator, batched lanes, threaded nodes,
process cluster — is reached through ``run(spec)``; the old entrypoints
(``execute_scenario``, ``shard_dataset``) remain as deprecation shims.
"""

import warnings

import numpy as np
import pytest

import repro.runtime as runtime_pkg
from repro.campaign.engine import execute_scenario
from repro.campaign.spec import ScenarioSpec
from repro.campaign.store import ResultStore
from repro.data import make_blobs_dataset, partition_dataset, shard_dataset
from repro.obs.tracer import Tracer
from repro.runtime import ScenarioResult, resolve_runtime, run


def _spec(**overrides):
    fields = dict(name="facade", num_steps=4, eval_every=2,
                  dataset_size=400, max_eval_samples=64)
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestResolveRuntime:
    def test_default_trainers_resolve_sequential(self):
        assert resolve_runtime(_spec()) == "sequential"
        assert resolve_runtime(_spec(trainer="vanilla")) == "sequential"

    def test_threaded_trainer_resolves_threaded(self):
        assert resolve_runtime(
            _spec(trainer="guanyu_threaded")) == "threaded"

    def test_explicit_runtimes_win(self):
        assert resolve_runtime(_spec(runtime="batched")) == "batched"
        assert resolve_runtime(_spec(trainer="guanyu_threaded",
                                     runtime="cluster")) == "cluster"


class TestRun:
    def test_sequential_result_shape(self):
        result = run(_spec())
        assert isinstance(result, ScenarioResult)
        assert result.status == "ran"
        assert result.runtime == "sequential"
        assert result.store_key is None
        assert result.duration_seconds > 0
        assert len(result.history.records) == 4

    def test_batched_runtime_bit_identical_to_sequential(self):
        sequential = run(_spec()).history.to_dict()
        batched = run(_spec(runtime="batched")).history.to_dict()
        assert sequential == batched

    def test_threaded_runtime_runs_and_labels(self):
        result = run(_spec(trainer="guanyu_threaded", num_steps=3,
                           name="threaded-run"))
        assert result.runtime == "threaded"
        assert result.history.label == "threaded-run"

    def test_invalid_spec_raises_before_running(self):
        with pytest.raises(ValueError):
            run(_spec(num_steps=0))

    def test_store_round_trip_and_cache_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run(_spec(), store=store)
        assert first.status == "ran"
        assert first.store_key is not None
        assert store.contains(first.store_key)
        second = run(_spec(name="same-but-renamed"), store=store)
        assert second.status == "cached"
        assert second.store_key == first.store_key
        assert second.history.label == "same-but-renamed"
        assert second.history.to_dict() == first.history.to_dict() | {
            "label": "same-but-renamed"}

    def test_explicit_tracer_collects_the_run(self):
        tracer = Tracer()
        result = run(_spec(), tracer=tracer)
        assert result.status == "ran"
        assert tracer.events(), "the run should have produced trace events"

    def test_spec_kernels_selects_backend_for_the_run(self):
        reference = run(_spec()).history.to_dict()
        optimised = run(_spec(kernels="numpy-opt")).history.to_dict()
        assert reference == optimised

    def test_runtime_package_exports_the_facade(self):
        for name in ("run", "resolve_runtime", "ScenarioResult",
                     "RUNTIME_KINDS"):
            assert name in runtime_pkg.__all__


class TestDeprecationShims:
    def test_execute_scenario_warns_and_matches_run(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            history = execute_scenario(_spec())
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert "repro.runtime.run" in str(caught[0].message)
        assert history.to_dict() == run(_spec()).history.to_dict()

    def test_shard_dataset_warns_and_matches_partition_dataset(self):
        dataset = make_blobs_dataset(num_samples=120, seed=3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = shard_dataset(dataset, 4, strategy="iid", seed=5)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert "partition_dataset" in str(caught[0].message)
        front_door = partition_dataset(dataset, 4, sharding="iid", seed=5)
        for old, new in zip(legacy, front_door):
            assert np.array_equal(old.features, new.features)
            assert np.array_equal(old.labels, new.labels)

    def test_partition_dataset_itself_does_not_warn(self):
        dataset = make_blobs_dataset(num_samples=120, seed=3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            partition_dataset(dataset, 4, sharding="iid", seed=5)
        assert caught == []
