"""Cross-cutting integration tests: fault injection, sharding, schedules, models."""

import pytest

from repro import ClusterConfig, GuanYuTrainer, VanillaTrainer
from repro.data import SyntheticImageDataset
from repro.network.delays import ConstantDelay
from repro.network.simulator import NetworkSimulator
from repro.nn import build_model
from repro.nn.schedules import InverseTimeDecay
from repro.runtime.cost import CostModel, INSTANT


class TestFaultInjection:
    def test_guanyu_progresses_despite_message_loss_and_duplication(
            self, blobs_split, softmax_model_fn, fast_schedule):
        """Dropped and duplicated messages slow progress but never corrupt it."""
        train, test = blobs_split
        config = ClusterConfig(num_servers=6, num_workers=12,
                               num_byzantine_workers=1)
        trainer = GuanYuTrainer(config=config, model_fn=softmax_model_fn,
                                train_dataset=train, test_dataset=test,
                                batch_size=16, schedule=fast_schedule, seed=1)
        # Replace the network with a lossy one (10 % drops, 10 % duplicates).
        trainer.network = NetworkSimulator(delay_model=ConstantDelay(1e-3), seed=1,
                                           drop_probability=0.1,
                                           duplicate_probability=0.1)
        history = trainer.run(num_steps=40, eval_every=20)
        assert history.final_accuracy() > 0.85
        assert trainer.network.stats.messages_dropped > 0
        assert trainer.network.stats.messages_duplicated > 0


class TestShardingStrategies:
    @pytest.mark.parametrize("strategy", ["iid", "replicated", "by_class"])
    def test_guanyu_converges_under_each_sharding(self, blobs_split,
                                                  softmax_model_fn, fast_schedule,
                                                  strategy):
        train, test = blobs_split
        config = ClusterConfig(num_servers=3, num_workers=6)
        trainer = GuanYuTrainer(config=config, model_fn=softmax_model_fn,
                                train_dataset=train, test_dataset=test,
                                batch_size=16, schedule=fast_schedule, seed=1,
                                sharding=strategy)
        history = trainer.run(num_steps=60, eval_every=30)
        # by_class sharding is pathological but Multi-Krum still averages
        # several workers per step, so learning proceeds (slower).
        threshold = 0.85 if strategy != "by_class" else 0.5
        assert history.final_accuracy() > threshold


class TestSchedulesEndToEnd:
    def test_robbins_monro_schedule_converges(self, blobs_split, softmax_model_fn):
        train, test = blobs_split
        config = ClusterConfig(num_servers=3, num_workers=6)
        trainer = GuanYuTrainer(config=config, model_fn=softmax_model_fn,
                                train_dataset=train, test_dataset=test,
                                batch_size=16, seed=1,
                                schedule=InverseTimeDecay(initial=0.1, decay=0.02))
        history = trainer.run(num_steps=60, eval_every=30)
        assert history.final_accuracy() > 0.85
        # The recorded learning rate must follow the schedule.
        assert history.records[-1].learning_rate < history.records[0].learning_rate


class TestImageWorkload:
    def test_guanyu_learns_synthetic_images_with_mlp(self, fast_schedule):
        data = SyntheticImageDataset(num_samples=600, image_size=8, noise=0.2, seed=3)
        train, test = data.split(0.85, seed=3)
        model_fn = lambda: build_model("mlp", in_features=3 * 8 * 8, hidden=(32,),
                                       num_classes=10, seed=3)
        config = ClusterConfig(num_servers=3, num_workers=6)
        trainer = GuanYuTrainer(config=config, model_fn=model_fn, train_dataset=train,
                                test_dataset=test, batch_size=32,
                                schedule=fast_schedule, seed=3)
        history = trainer.run(num_steps=50, eval_every=25)
        assert history.final_accuracy() > 0.5  # 10 classes, chance is 0.1

    def test_small_cnn_end_to_end_single_server(self, fast_schedule):
        data = SyntheticImageDataset(num_samples=300, image_size=16, noise=0.2, seed=4)
        train, test = data.split(0.85, seed=4)
        model_fn = lambda: build_model("small_cnn", image_size=16, channels=4, seed=4)
        trainer = VanillaTrainer(model_fn=model_fn, train_dataset=train,
                                 test_dataset=test, num_workers=3, batch_size=16,
                                 schedule=fast_schedule, seed=4)
        history = trainer.run(num_steps=15, eval_every=15)
        assert len(history) == 15
        assert history.final_accuracy() > 0.1


class TestCostBilling:
    def test_billed_parameters_stretch_the_simulated_clock(self, blobs_split,
                                                           softmax_model_fn,
                                                           fast_schedule):
        train, _ = blobs_split
        config = ClusterConfig(num_servers=3, num_workers=6)

        def build(cost_params):
            return GuanYuTrainer(config=config, model_fn=softmax_model_fn,
                                 train_dataset=train, batch_size=16,
                                 schedule=fast_schedule, seed=1,
                                 cost_num_parameters=cost_params)

        small = build(None).run(num_steps=5, eval_every=5)
        large = build(1_756_426).run(num_steps=5, eval_every=5)
        assert large.total_time() > small.total_time()

    def test_instant_cost_model_leaves_only_network_delays(self, blobs_split,
                                                           softmax_model_fn,
                                                           fast_schedule):
        train, _ = blobs_split
        config = ClusterConfig(num_servers=3, num_workers=6)
        trainer = GuanYuTrainer(config=config, model_fn=softmax_model_fn,
                                train_dataset=train, batch_size=16,
                                schedule=fast_schedule, seed=1, cost_model=INSTANT,
                                delay_model=ConstantDelay(1e-3,
                                                          bandwidth_bytes_per_second=1e12))
        history = trainer.run(num_steps=5, eval_every=5)
        # 3 network hops of 1 ms each per step, zero computation time.
        assert history.total_time() == pytest.approx(5 * 3e-3, rel=0.2)

    def test_custom_cost_model_is_honoured(self, blobs_split, softmax_model_fn,
                                           fast_schedule):
        train, _ = blobs_split
        slow_updates = CostModel(update_seconds_per_mparam=10.0)
        config = ClusterConfig(num_servers=3, num_workers=6)
        fast = GuanYuTrainer(config=config, model_fn=softmax_model_fn,
                             train_dataset=train, batch_size=16,
                             schedule=fast_schedule, seed=1)
        slow = GuanYuTrainer(config=config, model_fn=softmax_model_fn,
                             train_dataset=train, batch_size=16,
                             schedule=fast_schedule, seed=1, cost_model=slow_updates)
        assert slow.run(num_steps=3, eval_every=3).total_time() > \
            fast.run(num_steps=3, eval_every=3).total_time()
