"""Tests for the fault-schedule engine (repro.faults) across both runtimes."""

import numpy as np
import pytest

from repro.byzantine import RandomGradientAttack, SignFlipAttack
from repro.core import ClusterConfig, GuanYuTrainer, VanillaTrainer
from repro.faults import (
    FaultController,
    FaultEvent,
    FaultSchedule,
    GatedWorkerAttack,
)
from repro.metrics import evaluate_accuracy
from repro.network import ConstantDelay, MessageKind, NetworkSimulator
from repro.nn.schedules import ConstantSchedule
from repro.runtime.threads import ThreadedClusterRuntime, ThreadedTransport


# --------------------------------------------------------------------------- #
# Schedule
# --------------------------------------------------------------------------- #
class TestFaultSchedule:
    def test_json_round_trip(self):
        schedule = FaultSchedule(events=[
            FaultEvent(step=2, kind="crash", nodes=["ps/0"]),
            FaultEvent(step=5, kind="recover", nodes=["ps/0"]),
            FaultEvent(step=1, kind="partition",
                       groups=[["ps/1"], ["worker/0"]], label="p"),
            FaultEvent(step=4, kind="heal", label="p"),
            FaultEvent(step=0, kind="slowdown", nodes=["worker/1"], factor=3.0),
        ], drop_rate=0.1, duplicate_rate=0.05)
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored.to_dict() == schedule.to_dict()
        assert len(restored.events) == 5

    def test_compact_dict_omits_defaults(self):
        event = FaultEvent(step=3, kind="crash", nodes=["ps/1"])
        assert event.to_dict() == {"step": 3, "kind": "crash", "nodes": ["ps/1"]}

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(drop_rate=0.2)
        assert FaultSchedule(events=[FaultEvent(step=0, kind="crash",
                                                nodes=["a"])])

    def test_validation_rejects_bad_events(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule(events=[FaultEvent(step=0, kind="meteor")]).validate()
        with pytest.raises(ValueError, match="at least one node"):
            FaultSchedule(events=[FaultEvent(step=0, kind="crash")]).validate()
        with pytest.raises(ValueError, match="at least two groups"):
            FaultSchedule(events=[FaultEvent(step=0, kind="partition",
                                             groups=[["a"]])]).validate()
        with pytest.raises(ValueError, match="disjoint"):
            FaultSchedule(events=[FaultEvent(
                step=0, kind="partition",
                groups=[["a", "b"], ["b"]])]).validate()
        with pytest.raises(ValueError, match="crash twice"):
            FaultSchedule(events=[
                FaultEvent(step=0, kind="crash", nodes=["a"]),
                FaultEvent(step=2, kind="crash", nodes=["a"]),
            ]).validate()
        with pytest.raises(ValueError, match="never crashed"):
            FaultSchedule(events=[FaultEvent(step=1, kind="recover",
                                             nodes=["a"])]).validate()
        with pytest.raises(ValueError, match="empty"):
            FaultSchedule(events=[
                FaultEvent(step=5, kind="crash", nodes=["a"]),
                FaultEvent(step=5, kind="recover", nodes=["a"]),
            ]).validate()
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSchedule(drop_rate=1.0).validate()

    def test_validation_checks_known_nodes(self):
        schedule = FaultSchedule.crash_window(["ps/7"], 1, 3)
        schedule.validate(known_nodes=["ps/7", "worker/0"])
        with pytest.raises(ValueError, match="unknown nodes"):
            schedule.validate(known_nodes=["ps/0"])

    def test_crash_window_helper_orders_steps(self):
        with pytest.raises(ValueError):
            FaultSchedule.crash_window(["a"], 5, 5)
        with pytest.raises(ValueError):
            FaultSchedule.partition_window([["a"], ["b"]], 4, 2)


# --------------------------------------------------------------------------- #
# Controller
# --------------------------------------------------------------------------- #
class TestFaultController:
    def _controller(self):
        return FaultController(FaultSchedule(events=[
            FaultEvent(step=3, kind="crash", nodes=["ps/0"]),
            FaultEvent(step=7, kind="recover", nodes=["ps/0"]),
            FaultEvent(step=2, kind="partition",
                       groups=[["ps/1", "worker/0"], ["ps/2"]], label="p"),
            FaultEvent(step=6, kind="heal", label="p"),
            FaultEvent(step=1, kind="slowdown", nodes=["worker/1"],
                       factor=4.0, label="slow"),
            FaultEvent(step=5, kind="clear", label="slow"),
            FaultEvent(step=0, kind="delay_spike",
                       links=[["ps/1", "ps/2"]], extra_delay=0.25),
            FaultEvent(step=4, kind="activate_attack", nodes=["worker/2"]),
            FaultEvent(step=8, kind="deactivate_attack", nodes=["worker/2"]),
        ]), seed=0)

    def test_crash_interval_is_half_open(self):
        controller = self._controller()
        assert controller.node_alive("ps/0", 2)
        assert not controller.node_alive("ps/0", 3)
        assert not controller.node_alive("ps/0", 6)
        assert controller.node_alive("ps/0", 7)

    def test_partition_blocks_cross_group_only(self):
        controller = self._controller()
        assert controller.link_blocked("ps/1", "ps/2", 2)
        assert controller.link_blocked("ps/2", "worker/0", 5)
        assert not controller.link_blocked("ps/1", "worker/0", 3)  # same group
        assert not controller.link_blocked("ps/1", "ps/5", 3)      # ungrouped
        assert not controller.link_blocked("ps/1", "ps/2", 6)      # healed

    def test_link_effects_combine(self):
        controller = self._controller()
        factor, extra, _ = controller.link_effects("worker/1", "ps/2", 2)
        assert factor == pytest.approx(4.0)
        factor, _, _ = controller.link_effects("worker/1", "ps/2", 5)
        assert factor == pytest.approx(1.0)  # cleared
        _, extra, _ = controller.link_effects("ps/2", "ps/1", 0)
        assert extra == pytest.approx(0.25)  # link pair matches both ways

    def test_attack_gating_window(self):
        controller = self._controller()
        assert not controller.attack_active("worker/2", 3)
        assert controller.attack_active("worker/2", 4)
        assert controller.attack_active("worker/2", 7)
        assert not controller.attack_active("worker/2", 8)
        # nodes without gating events are always active
        assert controller.attack_active("worker/9", 0)

    def test_on_send_blocks_crashed_and_partitioned(self):
        controller = self._controller()
        decision = controller.on_send("ps/0", "worker/5", "m", 4)
        assert not decision.deliver and decision.blocked_by == "crash"
        decision = controller.on_send("ps/1", "ps/2", "m", 4)
        assert not decision.deliver and decision.blocked_by == "partition"
        decision = controller.on_send("ps/1", "ps/2", "m", 6)
        assert decision.deliver

    def test_hash_sampling_is_deterministic_and_calibrated(self):
        controller = FaultController(FaultSchedule(drop_rate=0.3), seed=5)
        twin = FaultController(FaultSchedule(drop_rate=0.3), seed=5)
        decisions = [controller.on_send(f"w{i}", "s", "g", 0).deliver
                     for i in range(600)]
        assert decisions == [twin.on_send(f"w{i}", "s", "g", 0).deliver
                             for i in range(600)]
        dropped = decisions.count(False)
        assert 120 < dropped < 240  # ~30 % of 600

    def test_reachable_senders_excludes_dead_and_partitioned(self):
        controller = self._controller()
        senders = ["ps/0", "ps/1", "ps/2", "ps/3"]
        assert controller.reachable_senders("worker/0", senders, 4) == \
            ["ps/1", "ps/3"]  # ps/0 crashed, ps/2 across the partition
        assert controller.reachable_senders("worker/0", senders, 7) == senders

    def test_participation_fixpoint_stalls_transitively(self):
        """An asymmetric partition ([w0] vs [s0]) starves everyone when the
        quorums are maximal: w0 and s0 stall directly, and every other node
        stalls transitively because it would wait on them."""
        controller = FaultController(FaultSchedule(events=[FaultEvent(
            step=2, kind="partition", groups=[["worker/0"], ["ps/0"]])]))
        workers = [f"worker/{i}" for i in range(4)]
        servers = [f"ps/{i}" for i in range(3)]
        # before the partition: everyone participates
        kept_w, kept_s = controller.participating_nodes(workers, servers,
                                                        3, 4, 1)
        assert kept_w == workers and kept_s == servers
        # after: nobody can complete the step with q = n and q̄ = n̄
        kept_w, kept_s = controller.participating_nodes(workers, servers,
                                                        3, 4, 2)
        assert kept_w == [] and kept_s == []
        # with slack in the model quorum only the starved server stalls:
        # ps/0 cannot hear gradients from all 4 workers, everyone else can
        # still fill both quorums from the remaining nodes
        kept_w, kept_s = controller.participating_nodes(workers, servers,
                                                        2, 4, 2)
        assert kept_w == workers and kept_s == servers[1:]

    def test_on_step_reports_each_step_once(self):
        controller = self._controller()
        fired = controller.on_step(3)
        assert [event.kind for event in fired] == ["crash"]
        assert controller.on_step(3) == []

    def test_gate_attack_wraps_only_gated_nodes(self):
        controller = self._controller()
        attack = SignFlipAttack()
        gated = controller.gate_attack("worker/2", attack)
        assert isinstance(gated, GatedWorkerAttack)
        assert gated.name == attack.name
        assert controller.gate_attack("worker/0", attack) is attack
        assert controller.gate_attack("worker/2", None) is None

    def test_gated_attack_honest_outside_window(self):
        controller = self._controller()
        gated = controller.gate_attack("worker/2", SignFlipAttack())
        from repro.byzantine.base import AttackContext
        honest = np.array([1.0, -2.0])
        before = gated.corrupt_gradient(AttackContext(step=1, honest_value=honest))
        inside = gated.corrupt_gradient(AttackContext(step=5, honest_value=honest))
        assert np.allclose(before, honest)
        assert np.allclose(inside, -honest)


# --------------------------------------------------------------------------- #
# Simulator integration
# --------------------------------------------------------------------------- #
class TestSimulatorFaults:
    def _sim(self, schedule, seed=0):
        return NetworkSimulator(
            delay_model=ConstantDelay(delay=0.01,
                                      bandwidth_bytes_per_second=1e12),
            seed=seed, fault_controller=FaultController(schedule, seed=seed))

    def test_partition_blocks_and_heals(self):
        schedule = FaultSchedule.partition_window([["a"], ["b"]], 1, 3)
        sim = self._sim(schedule)
        assert sim.send("a", "b", MessageKind.MODEL_TO_WORKER, 1,
                        np.ones(2), 0.0) is None
        assert sim.stats.messages_blocked == 1
        assert sim.send("a", "b", MessageKind.MODEL_TO_WORKER, 3,
                        np.ones(2), 0.0) is not None

    def test_crashed_sender_and_recipient_suppressed(self):
        schedule = FaultSchedule.crash_window(["a"], 0, 2)
        sim = self._sim(schedule)
        assert sim.send("a", "b", MessageKind.MODEL_TO_WORKER, 0,
                        np.ones(1), 0.0) is None
        assert sim.send("b", "a", MessageKind.MODEL_TO_WORKER, 1,
                        np.ones(1), 0.0) is None
        assert sim.send("b", "a", MessageKind.MODEL_TO_WORKER, 2,
                        np.ones(1), 0.0) is not None

    def test_delay_spike_extends_delivery(self):
        schedule = FaultSchedule(events=[
            FaultEvent(step=0, kind="delay_spike", nodes=["a"],
                       extra_delay=0.5)])
        sim = self._sim(schedule)
        message = sim.send("a", "b", MessageKind.MODEL_TO_WORKER, 0,
                           np.ones(1), send_time=1.0)
        assert message.deliver_time == pytest.approx(1.51)

    def test_slowdown_multiplies_delay(self):
        schedule = FaultSchedule(events=[
            FaultEvent(step=0, kind="slowdown", nodes=["a"], factor=10.0)])
        sim = self._sim(schedule)
        message = sim.send("a", "b", MessageKind.MODEL_TO_WORKER, 0,
                           np.ones(1), send_time=0.0)
        assert message.deliver_time == pytest.approx(0.1)

    def test_legacy_probability_args_still_work(self):
        sim = NetworkSimulator(delay_model=ConstantDelay(0.001), seed=0,
                               drop_probability=0.5)
        for index in range(200):
            sim.send(f"s{index}", "w", MessageKind.MODEL_TO_WORKER, 0,
                     np.zeros(1), 0.0)
        assert 50 < sim.stats.messages_dropped < 150
        assert sim.pending_count("w") == 200 - sim.stats.messages_dropped

    def test_mean_delay_counts_actual_deliveries(self):
        """Duplicates add their delay AND their delivery to the mean."""
        sim = NetworkSimulator(delay_model=ConstantDelay(
            delay=0.01, bandwidth_bytes_per_second=1e12), seed=0,
            duplicate_probability=0.9)
        for index in range(50):
            sim.send(f"s{index}", "w", MessageKind.MODEL_TO_WORKER, 0,
                     np.zeros(1), 0.0)
        stats = sim.stats
        assert stats.messages_duplicated > 10
        assert stats.messages_delivered == \
            stats.messages_sent + stats.messages_duplicated
        # Every original costs 0.01 and every duplicate 0.02; the mean over
        # actual deliveries is pulled between the two, never above 0.02.
        expected = (0.01 * stats.messages_sent
                    + 0.02 * stats.messages_duplicated) / stats.messages_delivered
        assert stats.mean_delay == pytest.approx(expected)
        assert 0.01 <= stats.mean_delay <= 0.02


# --------------------------------------------------------------------------- #
# Simulated trainer integration
# --------------------------------------------------------------------------- #
class TestGuanYuTrainerFaults:
    def _trainer(self, blobs_split, softmax_model_fn, schedule, **kwargs):
        train, test = blobs_split
        config = kwargs.pop("config", ClusterConfig(
            num_servers=6, num_workers=9,
            num_byzantine_servers=1, num_byzantine_workers=2))
        return GuanYuTrainer(
            config=config, model_fn=softmax_model_fn, train_dataset=train,
            test_dataset=test, schedule=ConstantSchedule(0.05),
            batch_size=16, seed=0, fault_schedule=schedule, **kwargs)

    def test_server_crash_and_recovery_converges(self, blobs_split,
                                                 softmax_model_fn):
        train, test = blobs_split
        schedule = FaultSchedule.crash_window(["ps/5"], 5, 12)
        trainer = self._trainer(blobs_split, softmax_model_fn, schedule)
        history = trainer.run(num_steps=25, eval_every=25)
        assert len(history) == 25
        model = softmax_model_fn()
        model.set_flat_parameters(trainer.global_parameters())
        assert evaluate_accuracy(model, test) > 0.8

    def test_crash_window_grows_then_contracts_spread(self, blobs_split,
                                                      softmax_model_fn):
        schedule = FaultSchedule.crash_window(["ps/5"], 5, 12)
        trainer = self._trainer(blobs_split, softmax_model_fn, schedule)
        history = trainer.run(num_steps=20, eval_every=20)
        spreads = [record.max_server_spread for record in history.records]
        # The crashed replica goes stale: spread grows during the window ...
        assert max(spreads[5:12]) > 0.1
        # ... and the phase-3 median contracts it back after recovery.
        assert spreads[-1] < 0.05

    def test_partitioned_worker_stalls_but_training_survives(
            self, blobs_split, softmax_model_fn):
        schedule = FaultSchedule.partition_window(
            groups=[["worker/0"],
                    [f"ps/{i}" for i in range(6)]],
            partition_step=4, heal_step=10)
        trainer = self._trainer(blobs_split, softmax_model_fn, schedule)
        history = trainer.run(num_steps=15, eval_every=15)
        assert len(history) == 15
        assert trainer.network.stats.messages_blocked > 0

    def test_crashed_majority_freezes_instead_of_diverging(
            self, blobs_split, softmax_model_fn):
        """Crashing more servers than n − q stalls learning, loudly visible
        as train_loss=None steps, then training resumes after recovery."""
        config = ClusterConfig(num_servers=6, num_workers=9,
                               num_byzantine_servers=0,
                               num_byzantine_workers=0, model_quorum=5)
        schedule = FaultSchedule.crash_window(["ps/4", "ps/5"], 3, 6)
        trainer = self._trainer(blobs_split, softmax_model_fn, schedule,
                                config=config)
        history = trainer.run(num_steps=10, eval_every=10)
        stalled = [record.step for record in history.records
                   if record.train_loss is None]
        assert stalled == [3, 4, 5]

    def test_gated_attack_only_bites_inside_window(self, blobs_split,
                                                   softmax_model_fn):
        schedule = FaultSchedule(events=[
            FaultEvent(step=5, kind="activate_attack",
                       nodes=["worker/7", "worker/8"]),
            FaultEvent(step=10, kind="deactivate_attack",
                       nodes=["worker/7", "worker/8"]),
        ])
        trainer = self._trainer(blobs_split, softmax_model_fn, schedule,
                                worker_attack=RandomGradientAttack(scale=50.0),
                                num_attacking_workers=2)
        assert isinstance(trainer.workers[-1].attack, GatedWorkerAttack)
        history = trainer.run(num_steps=12, eval_every=12)
        assert len(history) == 12

    def test_fault_config_recorded_in_history(self, blobs_split,
                                              softmax_model_fn):
        schedule = FaultSchedule.crash_window(["ps/5"], 2, 4)
        trainer = self._trainer(blobs_split, softmax_model_fn, schedule)
        assert trainer.history.config["faults"] == schedule.to_dict()

    def test_unknown_node_rejected_at_construction(self, blobs_split,
                                                   softmax_model_fn):
        schedule = FaultSchedule.crash_window(["ps/99"], 2, 4)
        with pytest.raises(ValueError, match="unknown nodes"):
            self._trainer(blobs_split, softmax_model_fn, schedule)

    def test_single_server_trainers_reject_faults(self, blobs_split,
                                                  softmax_model_fn):
        train, _ = blobs_split
        with pytest.raises(ValueError, match="trusted server"):
            VanillaTrainer(model_fn=softmax_model_fn, train_dataset=train,
                           num_workers=4,
                           fault_schedule=FaultSchedule.crash_window(
                               ["worker/0"], 1, 2))


# --------------------------------------------------------------------------- #
# Threaded runtime integration
# --------------------------------------------------------------------------- #
class TestThreadedRuntimeFaults:
    def _runtime(self, blobs_split, softmax_model_fn, schedule, **kwargs):
        train, _ = blobs_split
        config = kwargs.pop("config", ClusterConfig(
            num_servers=6, num_workers=9,
            num_byzantine_servers=1, num_byzantine_workers=2))
        return ThreadedClusterRuntime(
            config=config, model_fn=softmax_model_fn, train_dataset=train,
            batch_size=16, schedule=ConstantSchedule(0.05), seed=0,
            quorum_timeout=20.0, fault_schedule=schedule, **kwargs)

    def test_transport_suppresses_faulted_messages(self):
        controller = FaultController(
            FaultSchedule.crash_window(["a"], 0, 2), seed=0)
        transport = ThreadedTransport(["a", "b"], fault_controller=controller)
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(1))
        assert transport.messages_suppressed == 1
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 2, np.ones(1))
        payloads = transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 2,
                                         1, timeout=1.0)
        assert len(payloads) == 1

    def test_transport_duplicates_are_deduplicated(self):
        controller = FaultController(FaultSchedule(duplicate_rate=0.999),
                                     seed=0)
        transport = ThreadedTransport(["a", "b"], fault_controller=controller)
        for step in range(20):
            transport.send("a", "b", MessageKind.MODEL_TO_WORKER, step,
                           np.ones(1))
        assert controller.stats["duplicated"] > 10
        # every step's bucket holds exactly one message per sender
        for step in range(20):
            payloads = transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER,
                                             step, 1, timeout=1.0)
            assert len(payloads) == 1

    def test_abandoned_step_mail_is_discarded(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(1))
        transport.abandon_step("b", 0)
        assert transport._buffers["b"] == {}
        # late mail for the abandoned step is dropped on arrival too
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(1))
        assert transport._buffers["b"] == {}
        # other steps are unaffected
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 1, np.ones(1))
        assert len(transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 1,
                                         1, timeout=1.0)) == 1

    def test_crash_and_recovery_converges(self, blobs_split, softmax_model_fn):
        train, test = blobs_split
        schedule = FaultSchedule.crash_window(["ps/5"], 4, 10)
        runtime = self._runtime(blobs_split, softmax_model_fn, schedule)
        history = runtime.run(num_steps=20)
        assert len(history) == 20
        model = softmax_model_fn()
        model.set_flat_parameters(runtime.global_parameters())
        assert evaluate_accuracy(model, test) > 0.8
        assert runtime.transport.messages_suppressed > 0

    def test_partition_heal_converges(self, blobs_split, softmax_model_fn):
        train, test = blobs_split
        config = ClusterConfig(num_servers=6, num_workers=9,
                               num_byzantine_servers=1,
                               num_byzantine_workers=2)
        rest = [f"ps/{i}" for i in range(1, 6)] + \
            [f"worker/{i}" for i in range(9)]
        schedule = FaultSchedule.partition_window(
            groups=[["ps/0"], rest], partition_step=4, heal_step=9)
        runtime = self._runtime(blobs_split, softmax_model_fn, schedule,
                                config=config)
        history = runtime.run(num_steps=18)
        assert len(history) == 18
        model = softmax_model_fn()
        model.set_flat_parameters(runtime.global_parameters())
        assert evaluate_accuracy(model, test) > 0.8

    def test_asymmetric_partition_freezes_both_runtimes_gracefully(
            self, blobs_split, softmax_model_fn):
        """A partition that transitively starves everyone (maximal quorums,
        [worker/0] cut from [ps/0]) must freeze the window in BOTH runtimes
        — never a QuorumTimeout, never a RuntimeError."""
        train, _ = blobs_split
        config = ClusterConfig(num_servers=3, num_workers=4,
                               model_quorum=3, gradient_quorum=4)
        schedule = FaultSchedule.partition_window(
            groups=[["worker/0"], ["ps/0"]], partition_step=2, heal_step=5)
        runtime = ThreadedClusterRuntime(
            config=config, model_fn=softmax_model_fn, train_dataset=train,
            batch_size=16, schedule=ConstantSchedule(0.05), seed=0,
            quorum_timeout=10.0, fault_schedule=schedule)
        history = runtime.run(num_steps=8)
        frozen = [r.step for r in history.records if r.train_loss is None]
        assert frozen == [2, 3, 4]
        trainer = GuanYuTrainer(
            config=config, model_fn=softmax_model_fn, train_dataset=train,
            schedule=ConstantSchedule(0.05), batch_size=16, seed=0,
            fault_schedule=schedule)
        sim_history = trainer.run(num_steps=8, eval_every=8)
        assert [r.step for r in sim_history.records
                if r.train_loss is None] == frozen

    def test_same_schedule_same_suppression_as_simulator(self, blobs_split,
                                                         softmax_model_fn):
        """Both runtimes run the same protocol over the same schedule, so
        the deterministic fault decisions suppress the same messages."""
        train, _ = blobs_split
        config = ClusterConfig(num_servers=6, num_workers=9,
                               num_byzantine_servers=1,
                               num_byzantine_workers=2)
        schedule = FaultSchedule.crash_window(["ps/5"], 3, 8)
        runtime = self._runtime(blobs_split, softmax_model_fn, schedule,
                                config=config)
        runtime.run(num_steps=12)
        trainer = GuanYuTrainer(
            config=config, model_fn=softmax_model_fn, train_dataset=train,
            schedule=ConstantSchedule(0.05), batch_size=16, seed=0,
            fault_schedule=FaultSchedule.crash_window(["ps/5"], 3, 8))
        trainer.run(num_steps=12, eval_every=12)
        assert runtime.transport.messages_suppressed == \
            trainer.network.stats.messages_blocked
