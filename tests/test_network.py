"""Tests for the asynchronous network simulator and delay models."""

import numpy as np
import pytest

from repro.network import (
    ConstantDelay,
    ExponentialDelay,
    HeterogeneousDelay,
    LogNormalDelay,
    Message,
    MessageKind,
    NetworkSimulator,
    PartitionDelay,
    UniformDelay,
)


class TestDelayModels:
    def test_constant_delay_includes_bandwidth_term(self):
        model = ConstantDelay(delay=0.01, bandwidth_bytes_per_second=1e6)
        rng = np.random.default_rng(0)
        assert model.sample(rng, "a", "b", size_bytes=1_000_000) == pytest.approx(1.01)

    def test_uniform_delay_within_bounds(self):
        model = UniformDelay(low=0.001, high=0.002, bandwidth_bytes_per_second=1e12)
        rng = np.random.default_rng(0)
        samples = [model.latency(rng, "a", "b") for _ in range(200)]
        assert min(samples) >= 0.001
        assert max(samples) <= 0.002

    def test_exponential_delay_positive_with_minimum(self):
        model = ExponentialDelay(mean=0.001, minimum=0.0005)
        rng = np.random.default_rng(0)
        assert all(model.latency(rng, "a", "b") >= 0.0005 for _ in range(100))

    def test_lognormal_delay_has_heavy_tail(self):
        model = LogNormalDelay(median=0.001, sigma=1.0)
        rng = np.random.default_rng(0)
        samples = np.array([model.latency(rng, "a", "b") for _ in range(2000)])
        assert samples.max() > 5 * np.median(samples)

    def test_heterogeneous_delay_slows_down_straggler(self):
        base = ConstantDelay(delay=0.001)
        model = HeterogeneousDelay(base, node_factors={"slow": 10.0})
        rng = np.random.default_rng(0)
        assert model.latency(rng, "slow", "b") == pytest.approx(0.01)
        assert model.latency(rng, "a", "b") == pytest.approx(0.001)

    def test_partition_delay_penalises_cross_partition_messages(self):
        base = ConstantDelay(delay=0.001)
        model = PartitionDelay(base, partitioned_nodes={"a"}, period=1.0,
                               partition_duration=0.5, partition_penalty=1.0)
        rng = np.random.default_rng(0)
        model.set_clock(0.1)  # inside the partition window
        assert model.latency(rng, "a", "b") == pytest.approx(1.001)
        model.set_clock(0.7)  # outside the window
        assert model.latency(rng, "a", "b") == pytest.approx(0.001)

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            ConstantDelay(delay=-1.0)
        with pytest.raises(ValueError):
            UniformDelay(low=2.0, high=1.0)
        with pytest.raises(ValueError):
            ExponentialDelay(mean=0.0)
        with pytest.raises(ValueError):
            LogNormalDelay(median=0.0)


class TestDelayModelStatistics:
    """Statistical sanity: the sampled distributions match their parameters."""

    NUM_SAMPLES = 20_000

    def _samples(self, model, seed=0):
        rng = np.random.default_rng(seed)
        return np.array([model.latency(rng, "a", "b")
                         for _ in range(self.NUM_SAMPLES)])

    def test_exponential_mean_within_tolerance(self):
        model = ExponentialDelay(mean=2e-3, minimum=5e-4)
        samples = self._samples(model)
        # E[minimum + Exp(mean)] = minimum + mean; CLT tolerance ~ 3σ/√N.
        expected = 5e-4 + 2e-3
        assert samples.mean() == pytest.approx(expected, rel=0.05)
        assert samples.min() >= 5e-4

    def test_exponential_std_matches_mean_parameter(self):
        model = ExponentialDelay(mean=2e-3, minimum=0.0)
        samples = self._samples(model)
        assert samples.std() == pytest.approx(2e-3, rel=0.1)

    def test_lognormal_median_and_mean_within_tolerance(self):
        model = LogNormalDelay(median=1e-3, sigma=0.5)
        samples = self._samples(model)
        assert np.median(samples) == pytest.approx(1e-3, rel=0.05)
        # E[LogNormal(ln m, σ)] = m · exp(σ²/2)
        assert samples.mean() == pytest.approx(1e-3 * np.exp(0.125), rel=0.05)

    @pytest.mark.parametrize("model", [
        ConstantDelay(delay=1e-3, bandwidth_bytes_per_second=1e6),
        ExponentialDelay(mean=1e-3, bandwidth_bytes_per_second=1e6),
        LogNormalDelay(median=1e-3, bandwidth_bytes_per_second=1e6),
    ])
    def test_bandwidth_term_is_additive(self, model):
        """sample() == latency() + size/bandwidth for identical rng states."""
        size = 500_000  # 0.5 s transfer at 1 MB/s
        latency = model.latency(np.random.default_rng(7), "a", "b")
        total = model.sample(np.random.default_rng(7), "a", "b", size)
        assert total == pytest.approx(latency + size / 1e6)


class TestMessage:
    def test_size_accounts_for_payload(self):
        message = Message("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1000))
        assert message.size_bytes == 64 + 4000

    def test_silent_message_small(self):
        message = Message("a", "b", MessageKind.MODEL_TO_WORKER, 0, None)
        assert message.size_bytes == 64

    def test_ordering_by_delivery_time(self):
        early = Message("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1),
                        deliver_time=1.0)
        late = Message("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1),
                       deliver_time=2.0)
        assert early < late


class TestNetworkSimulator:
    def _sim(self, **kwargs):
        return NetworkSimulator(delay_model=ConstantDelay(delay=0.01,
                                                          bandwidth_bytes_per_second=1e12),
                                seed=0, **kwargs)

    def test_send_schedules_delivery(self):
        sim = self._sim()
        message = sim.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(3),
                           send_time=1.0)
        assert message.deliver_time == pytest.approx(1.01)
        assert sim.pending_count("b") == 1

    def test_silent_payload_never_enters_network(self):
        sim = self._sim()
        assert sim.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, None, 0.0) is None
        assert sim.stats.messages_sent == 0

    def test_collect_quorum_returns_first_q_by_delivery(self):
        sim = self._sim()
        for index, sender in enumerate(["s0", "s1", "s2", "s3"]):
            sim.send(sender, "w", MessageKind.MODEL_TO_WORKER, 0,
                     np.full(2, float(index)), send_time=float(index))
        record = sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=2)
        assert record.senders == ["s0", "s1"]
        assert record.completion_time == pytest.approx(1.01)

    def test_collect_quorum_respects_not_before(self):
        sim = self._sim()
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), send_time=0.0)
        record = sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=1,
                                    not_before=5.0)
        assert record.completion_time == pytest.approx(5.0)

    def test_collect_quorum_deduplicates_senders(self):
        sim = self._sim()
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), 0.0)
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.ones(1), 0.0)
        sim.send("s1", "w", MessageKind.MODEL_TO_WORKER, 0, np.ones(1), 0.5)
        record = sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=2)
        assert sorted(record.senders) == ["s0", "s1"]

    def test_collect_quorum_insufficient_senders_raises(self):
        sim = self._sim()
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), 0.0)
        with pytest.raises(RuntimeError):
            sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=2)

    def test_collect_quorum_filters_kind_and_step(self):
        sim = self._sim()
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), 0.0)
        sim.send("s1", "w", MessageKind.GRADIENT_TO_SERVER, 0, np.zeros(1), 0.0)
        sim.send("s2", "w", MessageKind.MODEL_TO_WORKER, 1, np.zeros(1), 0.0)
        record = sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=1)
        assert record.senders == ["s0"]

    def test_late_messages_discarded_after_collection(self):
        sim = self._sim()
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), 0.0)
        sim.send("s1", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), 10.0)
        sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=1)
        with pytest.raises(RuntimeError):
            sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=1)

    def test_late_discard_only_touches_collected_kind_and_step(self):
        """The discard rule (paper Fig. 2) empties exactly one (kind, step)
        bucket: slower senders of that step are gone, other steps and kinds
        stay buffered."""
        sim = self._sim()
        for index, sender in enumerate(["s0", "s1", "s2"]):
            sim.send(sender, "w", MessageKind.MODEL_TO_WORKER, 0,
                     np.zeros(1), send_time=float(index))
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 1, np.zeros(1), 0.0)
        sim.send("s0", "w", MessageKind.GRADIENT_TO_SERVER, 0, np.zeros(1), 0.0)

        record = sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0,
                                    quorum=2)
        assert record.senders == ["s0", "s1"]   # s2 arrived too late
        # s2's message was discarded with the bucket ...
        assert sim.pending_count("w") == 2
        # ... while step 1 and the other kind are still collectable.
        assert sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 1,
                                  quorum=1).senders == ["s0"]
        assert sim.collect_quorum("w", MessageKind.GRADIENT_TO_SERVER, 0,
                                  quorum=1).senders == ["s0"]

    def test_delay_override_for_byzantine_fast_channel(self):
        sim = self._sim()
        message = sim.send("byz", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1),
                           send_time=3.0, delay_override=0.0)
        assert message.deliver_time == pytest.approx(3.0)

    def test_drop_probability_loses_messages(self):
        sim = NetworkSimulator(delay_model=ConstantDelay(0.001), seed=0,
                               drop_probability=0.5)
        for index in range(100):
            sim.send(f"s{index}", "w", MessageKind.MODEL_TO_WORKER, 0,
                     np.zeros(1), 0.0)
        assert 20 < sim.stats.messages_dropped < 80
        assert sim.pending_count("w") == 100 - sim.stats.messages_dropped

    def test_duplicates_counted_once_towards_quorum(self):
        sim = NetworkSimulator(delay_model=ConstantDelay(0.001), seed=0,
                               duplicate_probability=0.9)
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), 0.0)
        with pytest.raises(RuntimeError):
            sim.collect_quorum("w", MessageKind.MODEL_TO_WORKER, 0, quorum=2)

    def test_purge_step_clears_buffers(self):
        sim = self._sim()
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1), 0.0)
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 1, np.zeros(1), 0.0)
        removed = sim.purge_step(0)
        assert removed == 1
        assert sim.pending_count("w") == 1

    def test_stats_track_bytes_and_mean_delay(self):
        sim = self._sim()
        sim.send("s0", "w", MessageKind.MODEL_TO_WORKER, 0, np.zeros(100), 0.0)
        assert sim.stats.bytes_sent == 64 + 400
        assert sim.stats.mean_delay > 0.0

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            NetworkSimulator(drop_probability=1.0)
        with pytest.raises(ValueError):
            NetworkSimulator(duplicate_probability=-0.1)

    def test_broadcast_reaches_every_recipient(self):
        sim = self._sim()
        sim.broadcast("s0", ["w0", "w1", "w2"], MessageKind.MODEL_TO_WORKER, 0,
                      np.zeros(1), 0.0)
        assert all(sim.pending_count(w) == 1 for w in ["w0", "w1", "w2"])
