"""Tests for datasets, loaders and sharding."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    Dataset,
    SyntheticImageDataset,
    SyntheticMNIST,
    make_blobs_dataset,
    make_moons_dataset,
    make_spirals_dataset,
    shard_dataset,
)


class TestDataset:
    def test_length_and_feature_shape(self):
        data = Dataset(np.zeros((10, 4)), np.zeros(10, dtype=int), num_classes=3)
        assert len(data) == 10
        assert data.feature_shape == (4,)
        assert data.num_classes == 3

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((10, 4)), np.zeros(9, dtype=int))

    def test_num_classes_inferred_from_labels(self):
        data = Dataset(np.zeros((4, 2)), np.array([0, 1, 2, 2]))
        assert data.num_classes == 3

    def test_subset_selects_rows(self):
        data = make_blobs_dataset(num_samples=20, seed=0)
        subset = data.subset(np.array([0, 5, 7]))
        assert len(subset) == 3
        assert np.allclose(subset.features[1], data.features[5])

    def test_split_fractions_and_disjointness(self):
        data = make_blobs_dataset(num_samples=100, seed=0)
        train, test = data.split(0.8, seed=1)
        assert len(train) == 80
        assert len(test) == 20

    def test_split_invalid_fraction(self):
        data = make_blobs_dataset(num_samples=10, seed=0)
        with pytest.raises(ValueError):
            data.split(1.5)

    def test_class_counts_sum_to_length(self):
        data = make_blobs_dataset(num_samples=90, num_classes=3, seed=2)
        assert data.class_counts().sum() == 90


class TestSyntheticImageDataset:
    def test_cifar_like_shapes(self):
        data = SyntheticImageDataset(num_samples=50, seed=0)
        assert data.feature_shape == (3, 32, 32)
        assert data.num_classes == 10

    def test_deterministic_given_seed(self):
        a = SyntheticImageDataset(num_samples=20, seed=5)
        b = SyntheticImageDataset(num_samples=20, seed=5)
        assert np.allclose(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(num_samples=20, seed=5)
        b = SyntheticImageDataset(num_samples=20, seed=6)
        assert not np.allclose(a.features, b.features)

    def test_small_image_option(self):
        data = SyntheticImageDataset(num_samples=10, image_size=8, seed=0)
        assert data.feature_shape == (3, 8, 8)

    def test_classes_are_separable_by_prototype_distance(self):
        # Low-noise samples of the same class should be closer to their own
        # class mean than to other class means most of the time.
        data = SyntheticImageDataset(num_samples=300, image_size=8, noise=0.1, seed=1)
        flat = data.features.reshape(len(data), -1)
        means = np.stack([flat[data.labels == c].mean(axis=0) for c in range(10)])
        distances = np.linalg.norm(flat[:, None, :] - means[None, :, :], axis=2)
        nearest = distances.argmin(axis=1)
        assert (nearest == data.labels).mean() > 0.9

    def test_synthetic_mnist_shapes(self):
        data = SyntheticMNIST(num_samples=30, seed=0)
        assert data.feature_shape == (1, 28, 28)
        assert data.num_classes == 10


class TestToyDatasets:
    def test_blobs_shapes(self):
        data = make_blobs_dataset(num_samples=60, num_classes=4, num_features=3, seed=0)
        assert data.feature_shape == (3,)
        assert data.num_classes == 4

    def test_spirals_balanced_classes(self):
        data = make_spirals_dataset(num_samples=90, num_classes=3, seed=0)
        assert set(np.unique(data.labels)) == {0, 1, 2}

    def test_moons_binary(self):
        data = make_moons_dataset(num_samples=40, seed=0)
        assert data.num_classes == 2
        assert len(data) == 40


class TestDataLoader:
    def test_next_batch_shapes(self):
        data = make_blobs_dataset(num_samples=50, seed=0)
        loader = DataLoader(data, batch_size=8, seed=1)
        features, labels = loader.next_batch()
        assert features.shape == (8, 2)
        assert labels.shape == (8,)

    def test_batch_size_clamped_to_dataset(self):
        data = make_blobs_dataset(num_samples=5, seed=0)
        loader = DataLoader(data, batch_size=100, seed=1)
        features, _ = loader.next_batch()
        assert features.shape[0] == 5

    def test_deterministic_given_seed(self):
        data = make_blobs_dataset(num_samples=50, seed=0)
        a = DataLoader(data, batch_size=8, seed=3).next_batch()
        b = DataLoader(data, batch_size=8, seed=3).next_batch()
        assert np.allclose(a[0], b[0])

    def test_epoch_iteration_covers_dataset(self):
        data = make_blobs_dataset(num_samples=23, seed=0)
        loader = DataLoader(data, batch_size=5, seed=1)
        seen = sum(len(labels) for _, labels in loader)
        assert seen == 23
        assert len(loader) == 5

    def test_invalid_batch_size(self):
        data = make_blobs_dataset(num_samples=10, seed=0)
        with pytest.raises(ValueError):
            DataLoader(data, batch_size=0)


class TestSharding:
    def test_iid_shards_partition_dataset(self):
        data = make_blobs_dataset(num_samples=100, seed=0)
        shards = shard_dataset(data, 4, strategy="iid", seed=1)
        assert len(shards) == 4
        assert sum(len(s) for s in shards) == 100

    def test_replicated_shards_share_everything(self):
        data = make_blobs_dataset(num_samples=30, seed=0)
        shards = shard_dataset(data, 3, strategy="replicated")
        assert all(len(s) == 30 for s in shards)

    def test_by_class_shards_are_skewed(self):
        data = make_blobs_dataset(num_samples=300, num_classes=3, seed=0)
        shards = shard_dataset(data, 3, strategy="by_class")
        # Each by-class shard should be dominated by few classes.
        dominant = [np.bincount(s.labels, minlength=3).max() / len(s) for s in shards]
        assert all(fraction > 0.8 for fraction in dominant)

    def test_unknown_strategy_raises(self):
        data = make_blobs_dataset(num_samples=10, seed=0)
        with pytest.raises(ValueError):
            shard_dataset(data, 2, strategy="magic")

    def test_too_many_shards_raises(self):
        data = make_blobs_dataset(num_samples=3, seed=0)
        with pytest.raises(ValueError):
            shard_dataset(data, 10)
