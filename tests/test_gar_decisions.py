"""Tests for GAR decision provenance (repro.aggregation.decision)."""

import math

import numpy as np
import pytest

from repro.aggregation import (
    attacker_acceptance_rate,
    decide,
    get_rule,
)


def honest_and_attackers(num_honest=8, num_attackers=2, dim=5, scale=100.0):
    """Clustered honest vectors followed by far-away attacker vectors.

    Returns ``(vectors, attacker_indices)`` with the attackers at the end
    of the stack.
    """
    rng = np.random.default_rng(42)
    honest = rng.normal(0.0, 0.1, size=(num_honest, dim))
    attackers = scale * np.sign(rng.normal(size=(num_attackers, dim)))
    vectors = list(honest) + list(attackers)
    attacker_indices = list(range(num_honest, num_honest + num_attackers))
    return vectors, attacker_indices


class TestKrumFamilyDecisions:
    def test_krum_rejects_crafted_outliers(self):
        vectors, attackers = honest_and_attackers()
        decision = decide(get_rule("krum", num_byzantine=2), vectors,
                          attacker_indices=attackers)
        assert decision.rule == "krum"
        assert len(decision.selected) == 1
        assert decision.attackers_selected == 0
        assert decision.acceptance_rate == 0.0
        # Krum scores: each attacker must score worse than every honest one.
        assert decision.scores is not None
        worst_honest = max(decision.scores[:8])
        assert all(decision.scores[i] > worst_honest for i in attackers)

    def test_multi_krum_rejects_crafted_outliers(self):
        vectors, attackers = honest_and_attackers()
        rule = get_rule("multi_krum", num_byzantine=2)
        decision = decide(rule, vectors, attacker_indices=attackers)
        assert decision.attackers_selected == 0
        assert decision.acceptance_rate == 0.0
        assert set(decision.selected).isdisjoint(attackers)
        # The selection stays close to the honest mean.
        assert decision.distance_to_honest_mean < 1.0

    def test_bulyan_rejects_crafted_outliers(self):
        vectors, attackers = honest_and_attackers(num_honest=10)
        decision = decide(get_rule("bulyan", num_byzantine=1), vectors,
                          attacker_indices=[10, 11])
        assert decision.attackers_selected == 0
        assert decision.acceptance_rate == 0.0

    def test_bulyan_without_byzantine_degenerates_to_all(self):
        vectors, _ = honest_and_attackers(num_attackers=0)
        decision = decide(get_rule("bulyan", num_byzantine=0), vectors)
        assert decision.selected == list(range(8))


class TestSelectionFreeRules:
    def test_mean_accepts_every_attacker(self):
        vectors, attackers = honest_and_attackers()
        decision = decide(get_rule("mean"), vectors,
                          attacker_indices=attackers)
        # Selection-free rules: every input contributes to the output.
        assert decision.selected == list(range(10))
        assert decision.attackers_selected == 2
        assert decision.acceptance_rate == 1.0
        assert decision.scores is None
        # The attacker pull shows in the honest-mean distance.
        assert decision.distance_to_honest_mean > 1.0

    def test_median_reports_full_selection_but_small_distance(self):
        vectors, attackers = honest_and_attackers()
        decision = decide(get_rule("median"), vectors,
                          attacker_indices=attackers)
        assert decision.acceptance_rate == 1.0
        assert decision.distance_to_honest_mean < 1.0


class TestDecisionPlumbing:
    def test_no_known_attackers_means_no_rate(self):
        vectors, _ = honest_and_attackers()
        decision = decide(get_rule("multi_krum", num_byzantine=2), vectors)
        assert decision.attacker_indices == []
        assert decision.acceptance_rate is None
        payload = decision.to_dict()
        assert "acceptance_rate" not in payload
        assert payload["rule"] == "multi_krum"

    def test_to_dict_is_json_friendly(self):
        import json

        vectors, attackers = honest_and_attackers()
        decision = decide(get_rule("multi_krum", num_byzantine=2), vectors,
                          attacker_indices=attackers)
        payload = decision.to_dict()
        json.dumps(payload)  # raises on numpy scalars / arrays
        assert payload["num_inputs"] == 10
        assert payload["attacker_indices"] == attackers

    def test_decision_does_not_mutate_inputs(self):
        vectors, attackers = honest_and_attackers()
        copies = [vector.copy() for vector in vectors]
        decide(get_rule("multi_krum", num_byzantine=2), vectors,
               attacker_indices=attackers)
        for vector, copy in zip(vectors, copies):
            assert np.array_equal(vector, copy)


class TestAcceptanceRateAggregation:
    def test_rate_across_decisions(self):
        vectors, attackers = honest_and_attackers()
        robust = decide(get_rule("multi_krum", num_byzantine=2), vectors,
                        attacker_indices=attackers)
        naive = decide(get_rule("mean"), vectors,
                       attacker_indices=attackers)
        assert attacker_acceptance_rate([robust, naive]) == \
            pytest.approx(0.5)
        assert attacker_acceptance_rate([robust, robust]) == 0.0
        assert attacker_acceptance_rate([naive]) == 1.0

    def test_rate_with_no_attackers_is_nan(self):
        vectors, _ = honest_and_attackers()
        decision = decide(get_rule("mean"), vectors)
        assert math.isnan(attacker_acceptance_rate([decision]))
        assert math.isnan(attacker_acceptance_rate([]))
