"""Tests for the empirical breakdown-point search."""

import json

import numpy as np

import pytest

from repro import cli
from repro.campaign.store import ResultStore
from repro.experiments.breakdown import (
    admissible_max_attackers,
    breakdown_table,
    run_breakdown_search,
)
from repro.experiments.common import ExperimentScale


def _scale(steps=8):
    scale = ExperimentScale.small()
    scale.num_steps = steps
    return scale


class TestBreakdownSearch:
    def test_pinned_resilience_boundary_table(self):
        """The boundary table is fixed for the pinned seed.

        The shape is the paper's: plain averaging breaks at the first
        omniscient attacker, the Byzantine-resilient median survives to
        the admissible maximum ``(n̄ - 3) / 3``.
        """
        results = run_breakdown_search(
            scale=_scale(),
            gars=("mean", "median"),
            adversaries=("omniscient_descent", "reversed_gradient"))
        boundary = [(row["gradient_rule"], row["adversary"],
                     row["breakdown_f"], row["admissible_f"],
                     row["survives_admissible_max"])
                    for row in breakdown_table(results)]
        assert boundary == [
            ("mean", "omniscient_descent", 0, 2, False),
            ("mean", "reversed_gradient", 0, 2, False),
            ("median", "omniscient_descent", 2, 2, True),
            ("median", "reversed_gradient", 2, 2, True),
        ]

    def test_search_is_bit_reproducible(self):
        first = run_breakdown_search(scale=_scale(), gars=("median",),
                                     adversaries=("omniscient_descent",))
        second = run_breakdown_search(scale=_scale(), gars=("median",),
                                      adversaries=("omniscient_descent",))
        assert breakdown_table(first) == breakdown_table(second)
        assert first[0].losses == second[0].losses

    def test_store_caches_every_evaluation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run_breakdown_search(scale=_scale(), gars=("median",),
                                     adversaries=("reversed_gradient",),
                                     store=store)
        entries = len(store)
        assert entries == 1 + first[0].evaluations  # baseline + attacked
        second = run_breakdown_search(scale=_scale(), gars=("median",),
                                      adversaries=("reversed_gradient",),
                                      store=store)
        assert len(store) == entries  # everything came from cache
        assert breakdown_table(first) == breakdown_table(second)
        # Cached entries are queryable like any other campaign result.
        assert store.query(adversary="reversed_gradient")

    def test_unknown_gar_raises(self):
        with pytest.raises(KeyError, match="unknown aggregation rule"):
            run_breakdown_search(scale=_scale(), gars=("nope",))

    def test_server_side_adversary_rejected_with_clear_message(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError, match="worker-side"):
            run_breakdown_search(scale=_scale(), gars=("median",),
                                 adversaries=("stale_model",), store=store)
        assert len(store) == 0  # rejected before the baseline trains

    def test_unknown_adversary_raises_before_any_training(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyError, match="unknown adversary"):
            run_breakdown_search(scale=_scale(), gars=("median",),
                                 adversaries=("omniscient_decsent",),
                                 store=store)
        assert len(store) == 0  # the typo fails before the baseline trains

    def test_label_flip_adversary_gets_workload_classes(self):
        # blobs has 4 classes; the attack's default num_classes=10 would
        # poison labels past the softmax range and crash the evaluation.
        results = run_breakdown_search(scale=_scale(), gars=("median",),
                                       adversaries=("label_flip",))
        assert results[0].adversary == "label_flip"
        assert all(np.isfinite(loss)
                   for loss in results[0].losses.values())

    def test_adversary_kwargs_override(self):
        results = run_breakdown_search(
            scale=_scale(), gars=("median",), adversaries=("collusion",),
            adversary_kwargs={"collusion": {"attack": "sign_flip"}})
        assert results[0].adversary == "collusion"
        assert results[0].breakdown_f >= 0

    def test_admissible_max_respects_rule_minimums(self):
        scale = _scale()
        # 9 workers: the cluster arithmetic admits f̄ ≤ 2; Bulyan needs
        # 4f̄ + 3 inputs, so it caps at f̄ = 1 ((9 - 3) / 4).
        assert admissible_max_attackers(scale, "median") == 2
        assert admissible_max_attackers(scale, "bulyan") == 1


class TestBreakdownCli:
    BASE = ["--steps", "8", "--workers-count", "9", "--servers-count", "6"]

    def test_breakdown_subcommand(self, capsys):
        code = cli.main([*self.BASE, "breakdown", "--gars", "mean", "median",
                         "--adversaries", "reversed_gradient"])
        out = capsys.readouterr().out
        assert code == 0
        assert "breakdown_f" in out and "admissible_f" in out
        assert "mean" in out and "median" in out

    def test_breakdown_json_and_store(self, capsys, tmp_path):
        path = tmp_path / "breakdown.json"
        store = tmp_path / "store"
        code = cli.main([*self.BASE, "--json", str(path), "breakdown",
                         "--gars", "median", "--adversaries",
                         "reversed_gradient", "--store", str(store)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["rows"][0]["gradient_rule"] == "median"
        assert payload["losses"][0]["adversary"] == "reversed_gradient"
        assert len(ResultStore(store)) > 0

    def test_breakdown_unknown_rule_exits_2(self, capsys):
        code = cli.main([*self.BASE, "breakdown", "--gars", "bogus"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
