"""Tests for the Byzantine worker and server behaviours."""

import numpy as np
import pytest

from repro.byzantine import (
    AttackContext,
    CorruptedModelAttack,
    EquivocationAttack,
    LabelFlipPoisoning,
    LittleIsEnoughAttack,
    RandomGradientAttack,
    RandomModelAttack,
    ReversedGradientAttack,
    SignFlipAttack,
    SilentServer,
    SilentWorker,
    StaleModelAttack,
    available_attacks,
    get_attack,
)


def _context(honest, peers=(), recipient=None, step=0, seed=0):
    return AttackContext(step=step, honest_value=np.asarray(honest, dtype=float),
                         peer_values=list(peers),
                         rng=np.random.default_rng(seed), recipient=recipient)


class TestWorkerAttacks:
    def test_random_gradient_is_large_and_unrelated(self):
        attack = RandomGradientAttack(scale=100.0)
        honest = np.zeros(50)
        out = attack.corrupt_gradient(_context(honest))
        assert out.shape == honest.shape
        assert np.linalg.norm(out) > 100.0

    def test_random_gradient_invalid_scale(self):
        with pytest.raises(ValueError):
            RandomGradientAttack(scale=0.0)

    def test_reversed_gradient_flips_and_scales(self):
        attack = ReversedGradientAttack(factor=10.0)
        honest = np.array([1.0, -2.0])
        assert np.allclose(attack.corrupt_gradient(_context(honest)), [-10.0, 20.0])

    def test_sign_flip_is_exact_negation(self):
        attack = SignFlipAttack()
        honest = np.array([0.5, -0.25, 3.0])
        assert np.allclose(attack.corrupt_gradient(_context(honest)), -honest)

    def test_little_is_enough_stays_near_peer_statistics(self):
        rng = np.random.default_rng(0)
        peers = [rng.normal(0.0, 1.0, size=20) for _ in range(10)]
        attack = LittleIsEnoughAttack(z_factor=1.5)
        out = attack.corrupt_gradient(_context(np.zeros(20), peers=peers))
        stacked = np.stack(peers)
        expected = stacked.mean(axis=0) - 1.5 * stacked.std(axis=0)
        assert np.allclose(out, expected)

    def test_little_is_enough_without_peers_falls_back(self):
        attack = LittleIsEnoughAttack(z_factor=2.0)
        honest = np.array([1.0, 2.0])
        assert np.allclose(attack.corrupt_gradient(_context(honest)), -2.0 * honest)

    def test_label_flip_poisons_batch_not_message(self):
        attack = LabelFlipPoisoning(num_classes=10)
        features = np.zeros((4, 3))
        labels = np.array([0, 1, 8, 9])
        _, flipped = attack.poison_batch(features, labels, _context(np.zeros(3)))
        assert np.array_equal(flipped, [9, 8, 1, 0])
        # The gradient message itself is passed through unchanged.
        honest = np.array([1.0, 2.0])
        assert np.allclose(attack.corrupt_gradient(_context(honest)), honest)

    def test_silent_worker_returns_none(self):
        assert SilentWorker().corrupt_gradient(_context(np.ones(3))) is None

    def test_default_poison_batch_is_noop(self):
        attack = SignFlipAttack()
        features, labels = np.ones((2, 2)), np.array([0, 1])
        out_features, out_labels = attack.poison_batch(features, labels,
                                                       _context(np.zeros(2)))
        assert out_features is features
        assert out_labels is labels


class TestServerAttacks:
    def test_corrupted_model_adds_large_noise(self):
        attack = CorruptedModelAttack(noise_scale=50.0)
        honest = np.zeros(100)
        out = attack.corrupt_model(_context(honest))
        assert np.linalg.norm(out) > 100.0

    def test_random_model_ignores_honest_value(self):
        attack = RandomModelAttack(scale=10.0)
        honest = np.full(30, 7.0)
        out = attack.corrupt_model(_context(honest))
        assert not np.allclose(out, honest)

    def test_equivocation_sends_different_values_to_different_recipients(self):
        attack = EquivocationAttack(magnitude=5.0)
        honest = np.ones(40)
        to_a = attack.corrupt_model(_context(honest, recipient="worker/0"))
        to_b = attack.corrupt_model(_context(honest, recipient="worker/1"))
        assert not np.allclose(to_a, to_b)

    def test_equivocation_consistent_for_same_recipient_and_step(self):
        attack = EquivocationAttack(magnitude=5.0)
        honest = np.ones(40)
        first = attack.corrupt_model(_context(honest, recipient="worker/0", step=3))
        second = attack.corrupt_model(_context(honest, recipient="worker/0", step=3))
        assert np.allclose(first, second)

    def test_stale_model_freezes_first_value(self):
        attack = StaleModelAttack()
        first = attack.corrupt_model(_context(np.zeros(5), step=0))
        later = attack.corrupt_model(_context(np.full(5, 10.0), step=100))
        assert np.allclose(first, later)

    def test_silent_server_returns_none(self):
        assert SilentServer().corrupt_model(_context(np.ones(3))) is None


class TestAttackRegistry:
    def test_all_attacks_registered(self):
        names = available_attacks()
        for expected in ("random_gradient", "reversed_gradient", "sign_flip",
                         "little_is_enough", "label_flip", "silent_worker",
                         "corrupted_model", "random_model", "equivocation",
                         "stale_model", "silent_server"):
            assert expected in names

    def test_get_attack_with_kwargs(self):
        attack = get_attack("reversed_gradient", factor=3.0)
        assert isinstance(attack, ReversedGradientAttack)
        assert attack.factor == 3.0

    def test_unknown_attack_raises(self):
        with pytest.raises(KeyError):
            get_attack("teleport")


class TestRegisteredAttackProperties:
    """Property tests over *every* registered attack.

    Two invariants the runtimes rely on:

    * **determinism** — for a fixed seed (and fresh attack state) the
      corruption is bit-identical across invocations; nothing may draw
      from global randomness or per-process salted hashes;
    * **honest inputs untouched** — the honest gradient, the observed peer
      gradients and the training batch are never mutated in place, and a
      non-silent corruption preserves the honest value's shape and float
      dtype.
    """

    @staticmethod
    def _context(seed=7, step=3, dimension=24):
        rng = np.random.default_rng(seed + 1000)
        honest = rng.normal(size=dimension)
        peers = [rng.normal(size=dimension) for _ in range(5)]
        return AttackContext(step=step, honest_value=honest,
                             peer_values=peers,
                             rng=np.random.default_rng(seed),
                             recipient="ps/1")

    @staticmethod
    def _corrupt(attack, context):
        if hasattr(attack, "corrupt_gradient"):
            return attack.corrupt_gradient(context)
        return attack.corrupt_model(context)

    @pytest.mark.parametrize("name", available_attacks())
    def test_deterministic_for_fixed_seed(self, name):
        outputs = [self._corrupt(get_attack(name), self._context())
                   for _ in range(2)]
        if outputs[0] is None:
            assert outputs[1] is None
        else:
            np.testing.assert_array_equal(outputs[0], outputs[1])

    @pytest.mark.parametrize("name", available_attacks())
    def test_honest_inputs_never_mutated(self, name):
        context = self._context()
        honest_before = context.honest_value.copy()
        peers_before = [peer.copy() for peer in context.peer_values]
        output = self._corrupt(get_attack(name), context)
        np.testing.assert_array_equal(context.honest_value, honest_before)
        for peer, before in zip(context.peer_values, peers_before):
            np.testing.assert_array_equal(peer, before)
        if output is not None:
            assert output.shape == honest_before.shape
            assert np.issubdtype(np.asarray(output).dtype, np.floating)

    @pytest.mark.parametrize("name", available_attacks())
    def test_poison_batch_leaves_originals_untouched(self, name):
        attack = get_attack(name)
        if not hasattr(attack, "poison_batch"):
            pytest.skip("server attacks have no data-poisoning hook")
        rng = np.random.default_rng(0)
        features = rng.normal(size=(8, 4))
        labels = rng.integers(0, 4, size=8)
        features_before = features.copy()
        labels_before = labels.copy()
        context = self._context()
        poisoned_features, poisoned_labels = attack.poison_batch(
            features, labels, context)
        np.testing.assert_array_equal(features, features_before)
        np.testing.assert_array_equal(labels, labels_before)
        assert np.asarray(poisoned_features).shape == features_before.shape
        assert np.asarray(poisoned_labels).shape == labels_before.shape
