"""Tests for checkpoint save/load of distributed training state."""

import numpy as np
import pytest

from repro import ClusterConfig, GuanYuTrainer
from repro.core.checkpoint import (
    checkpoint_trainer,
    load_checkpoint,
    restore_trainer,
    save_checkpoint,
)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        parameters = {"ps/0": np.arange(5.0), "ps/1": np.ones(5)}
        save_checkpoint(tmp_path / "ckpt", parameters, step=42, config={"lr": 0.05})
        loaded, step, config = load_checkpoint(tmp_path / "ckpt")
        assert step == 42
        assert config == {"lr": 0.05}
        assert set(loaded) == {"ps/0", "ps/1"}
        assert np.allclose(loaded["ps/0"], np.arange(5.0))

    def test_empty_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path, {}, step=0)

    def test_negative_step_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path, {"ps/0": np.zeros(3)}, step=-1)

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope")


class TestTrainerCheckpointing:
    def _trainer(self, blobs_split, model_fn, schedule, seed=4):
        train, test = blobs_split
        config = ClusterConfig(num_servers=4, num_workers=6)
        return GuanYuTrainer(config=config, model_fn=model_fn, train_dataset=train,
                             test_dataset=test, batch_size=16, schedule=schedule,
                             seed=seed)

    def test_checkpoint_and_restore_trainer(self, tmp_path, blobs_split,
                                            softmax_model_fn, fast_schedule):
        trainer = self._trainer(blobs_split, softmax_model_fn, fast_schedule)
        trainer.run(num_steps=10, eval_every=10)
        path = checkpoint_trainer(trainer, tmp_path / "ckpt")

        fresh = self._trainer(blobs_split, softmax_model_fn, fast_schedule, seed=9)
        before = fresh.correct_servers[0].current_parameters().copy()
        step = restore_trainer(fresh, path)
        assert step == 10
        restored = fresh.correct_servers[0].current_parameters()
        assert not np.allclose(restored, before)
        assert np.allclose(restored,
                           trainer.correct_servers[0].current_parameters())

    def test_restore_mismatched_cluster_raises(self, tmp_path, blobs_split,
                                               softmax_model_fn, fast_schedule):
        parameters = {"ps/99": np.zeros(36)}
        save_checkpoint(tmp_path / "ckpt", parameters, step=1)
        trainer = self._trainer(blobs_split, softmax_model_fn, fast_schedule)
        with pytest.raises(ValueError):
            restore_trainer(trainer, tmp_path / "ckpt")
