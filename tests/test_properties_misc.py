"""Additional property-based tests: flat-vector interface, sharding, delays.

These invariants matter to the distributed protocol:

* the flat parameter vector round-trips exactly (what a server installs is
  exactly what a worker later reads);
* sharding never loses or duplicates samples (for partitioning strategies);
* delay models never produce negative delays (the simulator's clock only
  moves forward).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_blobs_dataset, shard_dataset
from repro.network.delays import ExponentialDelay, LogNormalDelay, UniformDelay
from repro.nn import MLP


class TestFlatParameterProperties:
    @given(seed=st.integers(0, 2 ** 16), scale=st.floats(-10.0, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_set_get_round_trip_is_exact(self, seed, scale):
        model = MLP(5, (7,), 3, seed=seed)
        rng = np.random.default_rng(seed)
        target = rng.normal(0.0, abs(scale) + 0.1, size=model.num_parameters())
        model.set_flat_parameters(target)
        assert np.array_equal(model.get_flat_parameters(), target)

    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_apply_flat_gradient_matches_vector_arithmetic(self, seed):
        model = MLP(4, (6,), 2, seed=seed)
        rng = np.random.default_rng(seed)
        gradient = rng.normal(size=model.num_parameters())
        before = model.get_flat_parameters()
        model.apply_flat_gradient(gradient, learning_rate=0.1)
        assert np.allclose(model.get_flat_parameters(), before - 0.1 * gradient)


class TestShardingProperties:
    @given(num_samples=st.integers(30, 200), num_shards=st.integers(1, 10),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_iid_sharding_partitions_without_loss(self, num_samples, num_shards,
                                                  seed):
        dataset = make_blobs_dataset(num_samples=num_samples, num_classes=3,
                                     num_features=2, seed=seed)
        if num_shards > num_samples:
            num_shards = num_samples
        shards = shard_dataset(dataset, num_shards, strategy="iid", seed=seed)
        total = sum(len(shard) for shard in shards)
        assert total == num_samples
        # Shards are balanced to within one sample.
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    @given(num_shards=st.integers(1, 6), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_sharding_is_deterministic_given_seed(self, num_shards, seed):
        dataset = make_blobs_dataset(num_samples=60, num_classes=3,
                                     num_features=2, seed=0)
        first = shard_dataset(dataset, num_shards, strategy="iid", seed=seed)
        second = shard_dataset(dataset, num_shards, strategy="iid", seed=seed)
        for shard_a, shard_b in zip(first, second):
            assert np.allclose(shard_a.features, shard_b.features)


class TestDelayModelProperties:
    @given(low=st.floats(0.0, 1e-2), span=st.floats(0.0, 1e-2),
           size=st.integers(0, 10_000_000), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_uniform_delay_never_negative(self, low, span, size, seed):
        model = UniformDelay(low=low, high=low + span)
        rng = np.random.default_rng(seed)
        assert model.sample(rng, "a", "b", size) >= 0.0

    @given(mean=st.floats(1e-5, 1e-2), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_exponential_and_lognormal_never_negative(self, mean, seed):
        rng = np.random.default_rng(seed)
        assert ExponentialDelay(mean=mean).sample(rng, "a", "b", 1000) >= 0.0
        assert LogNormalDelay(median=mean).sample(rng, "a", "b", 1000) >= 0.0
