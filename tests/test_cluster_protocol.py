"""Wire-format tests for the cluster runtime's frame protocol."""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.network.message import MessageKind
from repro.runtime.cluster.protocol import (
    CONTROL_KINDS,
    DATA_KINDS,
    MAX_FRAME_BYTES,
    Frame,
    FrameError,
    recv_frame,
    send_frame,
)


def roundtrip(frame: Frame) -> Frame:
    """Encode a frame, push it through a socketpair, decode it back."""
    left, right = socket.socketpair()
    try:
        sender = threading.Thread(target=send_frame, args=(left, frame))
        sender.start()
        received = recv_frame(right)
        sender.join()
    finally:
        left.close()
        right.close()
    assert received is not None
    return received


class TestFrame:
    def test_payload_roundtrip(self):
        vector = np.arange(32, dtype=np.float64) / 7.0
        frame = roundtrip(Frame(kind="gradient_to_server", sender="worker/0",
                                recipient="ps/1", step=3, payload=vector,
                                meta={"loss": 0.5}))
        assert frame.kind == "gradient_to_server"
        assert frame.sender == "worker/0"
        assert frame.recipient == "ps/1"
        assert frame.step == 3
        assert frame.meta == {"loss": 0.5}
        np.testing.assert_array_equal(frame.payload, vector)

    def test_control_frame_without_payload(self):
        frame = roundtrip(Frame(kind="ping", sender="supervisor",
                                recipient="worker/2"))
        assert frame.kind == "ping"
        assert frame.payload is None

    def test_payload_coerced_to_contiguous_float64(self):
        frame = Frame(kind="loss", payload=[1, 2, 3])
        assert frame.payload.dtype == np.float64
        assert frame.payload.flags["C_CONTIGUOUS"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(FrameError, match="unknown frame kind"):
            Frame(kind="teleport")

    def test_data_kinds_shared_with_message_vocabulary(self):
        # the cluster runtime speaks the same protocol vocabulary as the
        # simulator / threaded runtimes — MessageKind values verbatim
        assert DATA_KINDS == frozenset(kind.value for kind in MessageKind)
        assert not DATA_KINDS & CONTROL_KINDS

    def test_oversized_frame_rejected_on_encode(self, monkeypatch):
        import repro.runtime.cluster.protocol as protocol

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameError, match="exceeds"):
            Frame(kind="model_to_worker", payload=np.ones(32)).encode()


class TestRecvFrame:
    def test_clean_eof_between_frames_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_truncation_inside_header_raises(self):
        left, right = socket.socketpair()
        try:
            encoded = Frame(kind="pong", sender="worker/0").encode()
            left.sendall(encoded[:6])  # length prefix + 2 header bytes
            left.close()
            with pytest.raises(FrameError, match="closed"):
                recv_frame(right)
        finally:
            right.close()

    def test_truncation_inside_payload_raises(self):
        left, right = socket.socketpair()
        try:
            encoded = Frame(kind="loss", payload=np.ones(16)).encode()
            left.sendall(encoded[:-8])  # drop the last float64
            left.close()
            with pytest.raises(FrameError, match="closed"):
                recv_frame(right)
        finally:
            right.close()

    def test_absurd_header_length_rejected_without_allocation(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
            left.close()
            with pytest.raises(FrameError, match="exceeds"):
                recv_frame(right)
        finally:
            right.close()

    def test_misaligned_payload_rejected(self):
        header = b'{"kind":"loss","sender":"","recipient":"","step":0,"meta":{}}'
        with pytest.raises(FrameError, match="whole float64"):
            Frame.decode(header, b"\x00" * 7)

    def test_undecodable_header_rejected(self):
        with pytest.raises(FrameError, match="undecodable"):
            Frame.decode(b"\xff\xfe not json", b"")
