"""Tests for the observability layer: tracer, ring buffer, JSONL, logging."""

import io
import json
import logging
import threading

import pytest

from repro.obs import (
    NullTracer,
    TraceEvent,
    Tracer,
    configure_logging,
    get_tracer,
    read_jsonl,
    set_tracer,
    use_tracer,
)
from repro.obs.logging import JsonLogFormatter


class TestTracerRecording:
    def test_span_context_manager_records_duration(self):
        tracer = Tracer()
        with tracer.span("phase.one", step=3, node="server-0"):
            pass
        (record,) = tracer.events()
        assert record.kind == "span"
        assert record.name == "phase.one"
        assert record.step == 3
        assert record.node == "server-0"
        assert record.dur is not None and record.dur >= 0.0

    def test_record_span_from_explicit_marks(self):
        tracer = Tracer()
        tracer.record_span("batch.step.compute", 1.0, 1.25, step=0, replicas=4)
        (record,) = tracer.events()
        assert record.dur == pytest.approx(0.25)
        assert record.attrs == {"replicas": 4}

    def test_event_and_counter(self):
        tracer = Tracer()
        tracer.event("campaign.scenario", scenario="s0", status="ran")
        tracer.count("campaign.cache_hit")
        tracer.count("campaign.cache_hit")
        tracer.count("campaign.scenario_seconds", 0.5)
        (record,) = tracer.events()
        assert record.kind == "event"
        assert record.attrs["scenario"] == "s0"
        assert tracer.counters() == {"campaign.cache_hit": 2,
                                     "campaign.scenario_seconds": 0.5}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("phase"):
            pass
        tracer.event("event")
        tracer.count("counter")
        tracer.record_span("span", 0.0, 1.0)
        assert tracer.events() == []
        assert tracer.counters() == {}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestRingBuffer:
    def test_truncation_keeps_newest_and_counts_dropped(self):
        tracer = Tracer(capacity=5)
        for index in range(12):
            tracer.event(f"e{index}")
        records = tracer.events()
        assert [record.name for record in records] == \
            [f"e{index}" for index in range(7, 12)]
        assert tracer.dropped == 7
        assert tracer.summary()["dropped"] == 7

    def test_no_drop_below_capacity(self):
        tracer = Tracer(capacity=10)
        for index in range(10):
            tracer.event(f"e{index}")
        assert tracer.dropped == 0

    def test_extend_respects_capacity(self):
        source = Tracer()
        for index in range(8):
            source.event(f"s{index}")
        sink = Tracer(capacity=4)
        sink.extend(source.events())
        assert len(sink.events()) == 4
        assert sink.dropped == 4


class TestJsonl:
    def test_round_trip_through_a_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase.a", step=1):
            pass
        tracer.event("fault", node="worker-2", ids=["worker-2"])
        tracer.count("hits", 3)
        path = str(tmp_path / "trace.jsonl")
        written = tracer.write_jsonl(path)
        assert written == 3

        records = read_jsonl(path)
        assert [record.kind for record in records] == \
            ["span", "event", "counter"]
        span, event, counter = records
        assert span.name == "phase.a" and span.step == 1
        assert event.attrs == {"ids": ["worker-2"]}
        assert counter.attrs == {"value": 3}

    def test_round_trip_through_a_stream(self):
        tracer = Tracer()
        tracer.event("e", k="v")
        buffer = io.StringIO()
        assert tracer.write_jsonl(buffer) == 1
        (record,) = read_jsonl(io.StringIO(buffer.getvalue()))
        assert record.name == "e" and record.attrs == {"k": "v"}

    def test_lines_are_compact_single_objects(self, tmp_path):
        tracer = Tracer()
        tracer.event("e")
        path = str(tmp_path / "trace.jsonl")
        tracer.write_jsonl(path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        assert len(lines) == 1
        payload = json.loads(lines[0])
        # Empty optional fields are dropped from the serialised form.
        assert "dur" not in payload and "node" not in payload

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert Tracer().write_jsonl(path) == 0
        assert read_jsonl(path) == []


class TestSummary:
    def test_aggregates_spans_by_name(self):
        tracer = Tracer()
        tracer.record_span("a", 0.0, 1.0)
        tracer.record_span("a", 2.0, 2.5)
        tracer.record_span("b", 0.0, 0.25)
        tracer.event("x")
        summary = tracer.summary()
        assert summary["spans"]["a"]["count"] == 2
        assert summary["spans"]["a"]["total_s"] == pytest.approx(1.5)
        assert summary["spans"]["a"]["mean_s"] == pytest.approx(0.75)
        assert summary["spans"]["b"]["count"] == 1
        assert summary["events"] == 1


class TestThreadSafety:
    def test_concurrent_appends_lose_nothing(self):
        tracer = Tracer(capacity=100_000)
        per_thread = 500

        def emit(tag):
            for index in range(per_thread):
                tracer.event(f"{tag}.{index}")
                tracer.count("total")

        threads = [threading.Thread(target=emit, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.events()) == 8 * per_thread
        assert tracer.counters()["total"] == 8 * per_thread
        assert tracer.dropped == 0


class TestActiveTracer:
    def test_default_is_a_null_tracer(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not get_tracer().enabled

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_use_tracer_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        assert get_tracer() is before

    def test_set_tracer_none_resets_to_null(self):
        set_tracer(Tracer())
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(None)
        assert isinstance(get_tracer(), NullTracer)

    def test_null_tracer_interface_is_noop(self, tmp_path):
        tracer = NullTracer()
        with tracer.span("x"):
            pass
        tracer.event("x")
        tracer.count("x")
        tracer.record_span("x", 0.0, 1.0)
        assert tracer.events() == []
        assert tracer.counters() == {}
        assert tracer.summary()["spans"] == {}
        assert tracer.write_jsonl(str(tmp_path / "none.jsonl")) == 0


class TestTraceEvent:
    def test_to_from_dict_round_trip(self):
        event = TraceEvent(name="n", kind="span", ts=1.5, dur=0.5,
                           step=2, node="server-1", attrs={"k": 1})
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_minimal_event_round_trip(self):
        event = TraceEvent(name="n")
        payload = event.to_dict()
        assert payload == {"name": "n", "kind": "event", "ts": 0.0}
        assert TraceEvent.from_dict(payload) == event

    def test_source_round_trips_and_is_absent_when_none(self):
        # multi-process (cluster) traces tag each record with its origin
        # process; single-process records must serialise exactly as before
        tagged = TraceEvent(name="n", kind="span", ts=1.0, dur=0.1,
                            node="worker/0", source="worker/0")
        payload = tagged.to_dict()
        assert payload["source"] == "worker/0"
        assert TraceEvent.from_dict(payload) == tagged
        assert "source" not in TraceEvent(name="n").to_dict()

    def test_source_survives_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.extend([TraceEvent(name="clu.step", kind="span", ts=0.0,
                                  dur=0.5, source="ps/1")])
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        (record,) = list(read_jsonl(str(path)))
        assert record.source == "ps/1"


class TestLogging:
    def test_configures_level_and_single_handler(self):
        logger = configure_logging("debug", stream=io.StringIO())
        assert logger.level == logging.DEBUG
        # Idempotent: re-configuring replaces the CLI handler.
        logger = configure_logging("error", stream=io.StringIO())
        cli_handlers = [handler for handler in logger.handlers
                        if getattr(handler, "_repro_cli_handler", False)]
        assert len(cli_handlers) == 1
        assert logger.level == logging.ERROR

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_json_mode_emits_parseable_lines(self):
        stream = io.StringIO()
        logger = configure_logging("info", json_mode=True, stream=stream)
        logger.info("hello %s", "world")
        payload = json.loads(stream.getvalue().strip())
        assert payload["message"] == "hello world"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro"

    def test_json_formatter_includes_exceptions(self):
        formatter = JsonLogFormatter()
        try:
            raise ValueError("bad")
        except ValueError:
            import sys
            record = logging.LogRecord("repro.test", logging.ERROR, __file__,
                                       1, "failed", None, sys.exc_info())
        payload = json.loads(formatter.format(record))
        assert "ValueError: bad" in payload["exception"]
