"""Tests for the thread-based runtime (real concurrency)."""

import numpy as np
import pytest

from repro.byzantine import CorruptedModelAttack, RandomGradientAttack
from repro.core import ClusterConfig
from repro.metrics import evaluate_accuracy
from repro.nn.schedules import ConstantSchedule
from repro.runtime.threads import QuorumTimeout, ThreadedClusterRuntime, ThreadedTransport
from repro.network.message import MessageKind


class TestThreadedTransport:
    def test_send_and_wait_quorum(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(3))
        payloads = transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 1,
                                         timeout=1.0)
        assert len(payloads) == 1
        assert np.allclose(payloads[0], 1.0)

    def test_silent_payload_not_delivered(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, None)
        with pytest.raises(QuorumTimeout):
            transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 1, timeout=0.2)

    def test_duplicate_senders_count_once(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.zeros(2))
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(2))
        with pytest.raises(QuorumTimeout):
            transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 2, timeout=0.2)

    def test_unknown_recipient_raises(self):
        transport = ThreadedTransport(["a"])
        with pytest.raises(KeyError):
            transport.send("a", "ghost", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1))

    def test_messages_for_other_steps_do_not_satisfy_quorum(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 1, np.zeros(1))
        with pytest.raises(QuorumTimeout):
            transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 1, timeout=0.2)


class TestThreadedClusterRuntime:
    def _runtime(self, blobs_split, model_fn, **kwargs):
        train, _ = blobs_split
        config = kwargs.pop("config", ClusterConfig(num_servers=3, num_workers=4))
        return ThreadedClusterRuntime(config=config, model_fn=model_fn,
                                      train_dataset=train, batch_size=16,
                                      schedule=ConstantSchedule(0.05), seed=0,
                                      **kwargs)

    def test_runs_and_learns(self, blobs_split, softmax_model_fn):
        train, test = blobs_split
        runtime = self._runtime(blobs_split, softmax_model_fn)
        history = runtime.run(num_steps=25)
        assert len(history) == 25
        model = softmax_model_fn()
        model.set_flat_parameters(runtime.global_parameters())
        assert evaluate_accuracy(model, test) > 0.8

    def test_correct_servers_agree_after_run(self, blobs_split, softmax_model_fn):
        runtime = self._runtime(blobs_split, softmax_model_fn)
        history = runtime.run(num_steps=10)
        final_spread = history.records[-1].max_server_spread
        assert final_spread is not None and final_spread < 1.0

    def test_tolerates_byzantine_nodes_with_jitter(self, blobs_split,
                                                   softmax_model_fn):
        train, test = blobs_split
        config = ClusterConfig(num_servers=6, num_workers=9,
                               num_byzantine_servers=1, num_byzantine_workers=2)
        runtime = ThreadedClusterRuntime(
            config=config, model_fn=softmax_model_fn, train_dataset=train,
            batch_size=16, schedule=ConstantSchedule(0.05), seed=0, jitter=0.002,
            worker_attack=RandomGradientAttack(scale=100.0), num_attacking_workers=2,
            server_attack=CorruptedModelAttack(noise_scale=100.0),
            num_attacking_servers=1)
        runtime.run(num_steps=25)
        model = softmax_model_fn()
        model.set_flat_parameters(runtime.global_parameters())
        assert evaluate_accuracy(model, test) > 0.8

    def test_straggler_does_not_block_progress(self, blobs_split, softmax_model_fn):
        config = ClusterConfig(num_servers=3, num_workers=6)
        runtime = self._runtime(blobs_split, softmax_model_fn, config=config,
                                straggler_sleep={"worker/5": 0.02})
        history = runtime.run(num_steps=5)
        assert len(history) == 5

    def test_attack_count_validation(self, blobs_split, softmax_model_fn):
        with pytest.raises(ValueError):
            self._runtime(blobs_split, softmax_model_fn,
                          worker_attack=RandomGradientAttack(),
                          num_attacking_workers=1)

    def test_invalid_num_steps(self, blobs_split, softmax_model_fn):
        runtime = self._runtime(blobs_split, softmax_model_fn)
        with pytest.raises(ValueError):
            runtime.run(num_steps=0)

    def test_stalled_server_triggers_quorum_timeout(self, blobs_split,
                                                    softmax_model_fn):
        """The QuorumTimeout path: a stalled server starves the quorums.

        With 3 servers the workers' model quorum is all 3, so one server
        sleeping past the deadline before each broadcast makes every worker
        time out — and :meth:`run` must surface that node error instead of
        silently returning an empty history.
        """
        runtime = self._runtime(blobs_split, softmax_model_fn,
                                straggler_sleep={"ps/0": 1.0},
                                quorum_timeout=0.2)
        with pytest.raises(QuorumTimeout, match="timed out waiting"):
            runtime.run(num_steps=2)

    def test_wait_quorum_timeout_message_names_the_shortfall(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(2))
        with pytest.raises(QuorumTimeout, match=r"2 .* at step 0 \(got 1\)"):
            transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 2,
                                  timeout=0.2)


class TestJitterDeterminism:
    """Delivery jitter must be reproducible under a fixed transport seed."""

    def _recorded_delays(self, monkeypatch, seed, num_messages=20):
        recorded = []

        class ImmediateTimer:
            """Capture the sampled delay, then deliver synchronously."""

            def __init__(self, delay, function, args=()):
                recorded.append(float(delay))
                self._function = function
                self._args = args

            def start(self):
                self._function(*self._args)

        monkeypatch.setattr("repro.runtime.threads.threading.Timer",
                            ImmediateTimer)
        transport = ThreadedTransport(["a", "b"], jitter=0.01, seed=seed)
        for step in range(num_messages):
            transport.send("a", "b", MessageKind.MODEL_TO_WORKER, step,
                           np.ones(2))
        # Jittered messages still arrive (quorum satisfiable per step).
        payloads = transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 1,
                                         timeout=0.5)
        assert len(payloads) == 1
        return recorded

    def test_same_seed_means_identical_delay_sequence(self, monkeypatch):
        first = self._recorded_delays(monkeypatch, seed=123)
        second = self._recorded_delays(monkeypatch, seed=123)
        assert first == second
        assert len(first) == 20
        assert all(0.0 <= delay <= 0.01 for delay in first)

    def test_different_seeds_sample_different_delays(self, monkeypatch):
        assert self._recorded_delays(monkeypatch, seed=1) != \
            self._recorded_delays(monkeypatch, seed=2)
