"""Tests for the thread-based runtime (real concurrency)."""

import numpy as np
import pytest

from repro.byzantine import CorruptedModelAttack, RandomGradientAttack
from repro.core import ClusterConfig
from repro.metrics import evaluate_accuracy
from repro.nn.schedules import ConstantSchedule
from repro.runtime.threads import QuorumTimeout, ThreadedClusterRuntime, ThreadedTransport
from repro.network.message import MessageKind


class TestThreadedTransport:
    def test_send_and_wait_quorum(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(3))
        payloads = transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 1,
                                         timeout=1.0)
        assert len(payloads) == 1
        assert np.allclose(payloads[0], 1.0)

    def test_silent_payload_not_delivered(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, None)
        with pytest.raises(QuorumTimeout):
            transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 1, timeout=0.2)

    def test_duplicate_senders_count_once(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.zeros(2))
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 0, np.ones(2))
        with pytest.raises(QuorumTimeout):
            transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 2, timeout=0.2)

    def test_unknown_recipient_raises(self):
        transport = ThreadedTransport(["a"])
        with pytest.raises(KeyError):
            transport.send("a", "ghost", MessageKind.MODEL_TO_WORKER, 0, np.zeros(1))

    def test_messages_for_other_steps_do_not_satisfy_quorum(self):
        transport = ThreadedTransport(["a", "b"])
        transport.send("a", "b", MessageKind.MODEL_TO_WORKER, 1, np.zeros(1))
        with pytest.raises(QuorumTimeout):
            transport.wait_quorum("b", MessageKind.MODEL_TO_WORKER, 0, 1, timeout=0.2)


class TestThreadedClusterRuntime:
    def _runtime(self, blobs_split, model_fn, **kwargs):
        train, _ = blobs_split
        config = kwargs.pop("config", ClusterConfig(num_servers=3, num_workers=4))
        return ThreadedClusterRuntime(config=config, model_fn=model_fn,
                                      train_dataset=train, batch_size=16,
                                      schedule=ConstantSchedule(0.05), seed=0,
                                      **kwargs)

    def test_runs_and_learns(self, blobs_split, softmax_model_fn):
        train, test = blobs_split
        runtime = self._runtime(blobs_split, softmax_model_fn)
        history = runtime.run(num_steps=25)
        assert len(history) == 25
        model = softmax_model_fn()
        model.set_flat_parameters(runtime.global_parameters())
        assert evaluate_accuracy(model, test) > 0.8

    def test_correct_servers_agree_after_run(self, blobs_split, softmax_model_fn):
        runtime = self._runtime(blobs_split, softmax_model_fn)
        history = runtime.run(num_steps=10)
        final_spread = history.records[-1].max_server_spread
        assert final_spread is not None and final_spread < 1.0

    def test_tolerates_byzantine_nodes_with_jitter(self, blobs_split,
                                                   softmax_model_fn):
        train, test = blobs_split
        config = ClusterConfig(num_servers=6, num_workers=9,
                               num_byzantine_servers=1, num_byzantine_workers=2)
        runtime = ThreadedClusterRuntime(
            config=config, model_fn=softmax_model_fn, train_dataset=train,
            batch_size=16, schedule=ConstantSchedule(0.05), seed=0, jitter=0.002,
            worker_attack=RandomGradientAttack(scale=100.0), num_attacking_workers=2,
            server_attack=CorruptedModelAttack(noise_scale=100.0),
            num_attacking_servers=1)
        runtime.run(num_steps=25)
        model = softmax_model_fn()
        model.set_flat_parameters(runtime.global_parameters())
        assert evaluate_accuracy(model, test) > 0.8

    def test_straggler_does_not_block_progress(self, blobs_split, softmax_model_fn):
        config = ClusterConfig(num_servers=3, num_workers=6)
        runtime = self._runtime(blobs_split, softmax_model_fn, config=config,
                                straggler_sleep={"worker/5": 0.02})
        history = runtime.run(num_steps=5)
        assert len(history) == 5

    def test_attack_count_validation(self, blobs_split, softmax_model_fn):
        with pytest.raises(ValueError):
            self._runtime(blobs_split, softmax_model_fn,
                          worker_attack=RandomGradientAttack(),
                          num_attacking_workers=1)

    def test_invalid_num_steps(self, blobs_split, softmax_model_fn):
        runtime = self._runtime(blobs_split, softmax_model_fn)
        with pytest.raises(ValueError):
            runtime.run(num_steps=0)
