"""Integration tests for the single-server baselines (vanilla TF / Krum)."""

import pytest

from repro import SingleServerKrumTrainer, VanillaTrainer
from repro.byzantine import RandomGradientAttack, SilentWorker
from repro.metrics import throughput_updates_per_second


def _vanilla(blobs_split, model_fn, schedule, **kwargs):
    train, test = blobs_split
    return VanillaTrainer(model_fn=model_fn, train_dataset=train, test_dataset=test,
                          batch_size=16, schedule=schedule, seed=2, **kwargs)


class TestVanillaTrainer:
    def test_converges_without_byzantine_workers(self, blobs_split, softmax_model_fn,
                                                 fast_schedule):
        history = _vanilla(blobs_split, softmax_model_fn, fast_schedule,
                           num_workers=6).run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_single_byzantine_worker_destroys_convergence(self, blobs_split,
                                                          softmax_model_fn,
                                                          fast_schedule):
        """Figure 4: vanilla averaging cannot tolerate even one Byzantine node."""
        history = _vanilla(blobs_split, softmax_model_fn, fast_schedule,
                           num_workers=6,
                           worker_attack=RandomGradientAttack(scale=100.0),
                           num_attacking_workers=1).run(num_steps=60, eval_every=20)
        assert history.final_accuracy() < 0.6

    def test_silent_byzantine_worker_is_harmless(self, blobs_split, softmax_model_fn,
                                                 fast_schedule):
        """The paper notes silence is the one Byzantine behaviour vanilla survives."""
        history = _vanilla(blobs_split, softmax_model_fn, fast_schedule,
                           num_workers=6, worker_attack=SilentWorker(),
                           num_attacking_workers=1).run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_external_communication_adds_time_overhead(self, blobs_split,
                                                       softmax_model_fn,
                                                       fast_schedule):
        """Section 5.3: vanilla GuanYu is slower than vanilla TF per update."""
        fast = _vanilla(blobs_split, softmax_model_fn, fast_schedule, num_workers=6,
                        external_communication=False).run(num_steps=15, eval_every=15)
        slow = _vanilla(blobs_split, softmax_model_fn, fast_schedule, num_workers=6,
                        external_communication=True).run(num_steps=15, eval_every=15)
        assert slow.total_time() > fast.total_time()
        assert (throughput_updates_per_second(fast)
                > throughput_updates_per_second(slow))

    def test_validation_errors(self, blobs_split, softmax_model_fn, fast_schedule):
        with pytest.raises(ValueError):
            _vanilla(blobs_split, softmax_model_fn, fast_schedule, num_workers=0)
        with pytest.raises(ValueError):
            _vanilla(blobs_split, softmax_model_fn, fast_schedule, num_workers=4,
                     num_attacking_workers=1)
        with pytest.raises(ValueError):
            _vanilla(blobs_split, softmax_model_fn, fast_schedule, num_workers=2,
                     worker_attack=RandomGradientAttack(), num_attacking_workers=3)

    def test_spread_is_zero_with_single_server(self, blobs_split, softmax_model_fn,
                                               fast_schedule):
        history = _vanilla(blobs_split, softmax_model_fn, fast_schedule,
                           num_workers=4).run(num_steps=3, eval_every=3)
        assert all(record.max_server_spread == 0.0 for record in history.records)


class TestSingleServerKrum:
    def test_tolerates_byzantine_workers_with_trusted_server(self, blobs_split,
                                                             softmax_model_fn,
                                                             fast_schedule):
        train, test = blobs_split
        trainer = SingleServerKrumTrainer(
            model_fn=softmax_model_fn, train_dataset=train, test_dataset=test,
            num_workers=9, num_byzantine_workers=2, batch_size=16,
            schedule=fast_schedule, seed=2,
            worker_attack=RandomGradientAttack(scale=100.0), num_attacking_workers=2)
        history = trainer.run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_rejects_too_few_workers_for_declared_f(self, blobs_split,
                                                    softmax_model_fn, fast_schedule):
        train, _ = blobs_split
        with pytest.raises(ValueError):
            SingleServerKrumTrainer(model_fn=softmax_model_fn, train_dataset=train,
                                    num_workers=5, num_byzantine_workers=2,
                                    schedule=fast_schedule)

    def test_records_declared_f_in_config(self, blobs_split, softmax_model_fn,
                                          fast_schedule):
        train, _ = blobs_split
        trainer = SingleServerKrumTrainer(model_fn=softmax_model_fn,
                                          train_dataset=train, num_workers=9,
                                          num_byzantine_workers=2, batch_size=16,
                                          schedule=fast_schedule)
        assert trainer.history.config["declared_byzantine_workers"] == 2
        assert trainer.history.config["gradient_rule"] == "multi_krum"
