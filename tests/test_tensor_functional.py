"""Unit tests for the functional NN operations (softmax, conv, pooling)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    conv2d,
    cross_entropy,
    gradient_check,
    log_softmax,
    max_pool2d,
    nll_loss,
    relu,
    softmax,
)
from repro.tensor.functional import avg_pool2d, flatten


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(5, 7)))
        out = softmax(x)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_is_shift_invariant(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]))
        shifted = Tensor(np.array([[101.0, 102.0, 103.0]]))
        assert np.allclose(softmax(x).data, softmax(shifted).data)

    def test_softmax_numerically_stable_with_large_logits(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        out = softmax(x).data
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(4, 6)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_prediction_equals_log_k(self):
        logits = Tensor(np.zeros((3, 10)))
        loss = cross_entropy(logits, np.array([0, 5, 9]))
        assert loss.item() == pytest.approx(np.log(10.0))

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(2)
        logits = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        targets = rng.integers(0, 4, size=6)
        assert gradient_check(lambda t: cross_entropy(t, targets), [logits])

    def test_nll_loss_selects_target_log_probs(self):
        log_probs = Tensor(np.log(np.full((2, 2), 0.5)))
        loss = nll_loss(log_probs, np.array([0, 1]))
        assert loss.item() == pytest.approx(np.log(2.0))

    def test_cross_entropy_gradient_sums_to_zero_per_row(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        cross_entropy(logits, rng.integers(0, 3, size=5)).backward()
        assert np.allclose(logits.grad.sum(axis=1), 0.0, atol=1e-10)


class TestConv2D:
    def test_output_shape_no_padding(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        assert conv2d(x, w).shape == (2, 4, 6, 6)

    def test_output_shape_same_padding(self):
        x = Tensor(np.zeros((1, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        assert conv2d(x, w, padding=1).shape == (1, 4, 8, 8)

    def test_output_shape_with_stride(self):
        x = Tensor(np.zeros((1, 1, 8, 8)))
        w = Tensor(np.zeros((2, 1, 2, 2)))
        assert conv2d(x, w, stride=2).shape == (1, 2, 4, 4)

    def test_identity_kernel_preserves_input(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 1, 5, 5)))
        w = Tensor(np.ones((1, 1, 1, 1)))
        assert np.allclose(conv2d(x, w).data, x.data)

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 1, 4, 4))
        w = rng.normal(size=(1, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(w)).data
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = (x[0, 0, i:i + 3, j:j + 3] * w[0, 0]).sum()
        assert np.allclose(out[0, 0], expected)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 1, 1)))
        b = Tensor(np.array([1.0, -2.0]))
        out = conv2d(x, w, b).data
        assert np.allclose(out[0, 0], 1.0)
        assert np.allclose(out[0, 1], -2.0)

    def test_gradcheck_weight_and_input(self):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        assert gradient_check(lambda a, ww, bb: conv2d(a, ww, bb, padding=1),
                              [x, w, b], atol=1e-3)


class TestPooling:
    def test_max_pool_shape(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        assert max_pool2d(x, 2).shape == (2, 3, 4, 4)

    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2).data
        assert np.allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_with_padding_ignores_padded_positions(self):
        x = Tensor(-np.ones((1, 1, 4, 4)))
        out = max_pool2d(x, kernel_size=3, stride=2, padding=1).data
        # All inputs are -1; padded -inf cells must never win.
        assert np.allclose(out, -1.0)

    def test_max_pool_same_padding_shape_matches_tf(self):
        # 32x32 pooled with 3x3 stride 2 and SAME padding gives 16x16 (paper CNN).
        x = Tensor(np.zeros((1, 1, 32, 32)))
        assert max_pool2d(x, 3, stride=2, padding=1).shape == (1, 1, 16, 16)

    def test_max_pool_gradcheck(self):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        assert gradient_check(lambda t: max_pool2d(t, 2), [x], atol=1e-3)

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2).data
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(7)
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        assert gradient_check(lambda t: avg_pool2d(t, 2), [x])

    def test_flatten_keeps_batch(self):
        x = Tensor(np.zeros((3, 2, 4, 4)))
        assert flatten(x).shape == (3, 32)


class TestActivationHelpers:
    def test_relu_helper_matches_method(self):
        x = Tensor(np.array([-1.0, 3.0]))
        assert np.allclose(relu(x).data, x.relu().data)
