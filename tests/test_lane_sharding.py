"""Lane-sharded batched execution is bit-identical to single-process.

``run_batched_scenarios(specs, lanes=N)`` splits a seed group's replica
lanes into contiguous chunks executed across a process pool.  Because
every lane is fully independent, the merged histories must equal the
single-process batched run **bitwise** — which the tier-1 batched
equivalence suite in turn pins to the sequential trainer.  The cases here
deliberately span the hard axes: attacks with per-lane RNG, fault
schedules with probabilistic drops, and non-i.i.d. hetero partitions.
"""

import numpy as np
import pytest

from repro.batch import (
    BatchingUnsupported,
    run_batched_scenarios,
)
from repro.campaign.engine import run_campaign
from repro.campaign.spec import ScenarioSpec
from repro.faults import FaultEvent, FaultSchedule
from repro.kernels import use_backend

SEEDS = (21, 22, 23, 24, 25)


def _small(**overrides):
    base = dict(num_steps=6, eval_every=3, dataset_size=400,
                max_eval_samples=64)
    base.update(overrides)
    return base


def _specs(tag, **fields):
    return [ScenarioSpec(name=f"{tag}{seed}", seed=seed, **_small(**fields))
            for seed in SEEDS]


def assert_sharded_identical(specs, lanes=2, lane_chunk=None):
    single = run_batched_scenarios([spec.replace() for spec in specs])
    sharded = run_batched_scenarios([spec.replace() for spec in specs],
                                    lanes=lanes, lane_chunk=lane_chunk)
    assert len(single) == len(sharded) == len(specs)
    for lone, merged in zip(single, sharded):
        assert lone.to_dict() == merged.to_dict()
    return sharded


class TestBitIdentity:
    def test_plain_softmax(self):
        assert_sharded_identical(_specs("p"))

    def test_uneven_chunks(self):
        # 5 specs over 3 lanes → chunks of 2/2/1; order must be preserved.
        assert_sharded_identical(_specs("u"), lanes=3)

    def test_explicit_lane_chunk(self):
        assert_sharded_identical(_specs("c"), lanes=2, lane_chunk=2)

    def test_worker_attack_with_rng(self):
        assert_sharded_identical(
            _specs("w", worker_attack="random_gradient"))

    def test_adversary(self):
        assert_sharded_identical(_specs("a", adversary="collusion"))

    def test_fault_schedule_with_drops(self):
        schedule = FaultSchedule(events=[
            FaultEvent(step=2, kind="crash", nodes=["ps/1"]),
            FaultEvent(step=4, kind="recover", nodes=["ps/1"]),
        ], duplicate_rate=0.05)
        assert_sharded_identical(_specs("f", faults=schedule.to_dict()))

    def test_hetero_partition(self):
        hetero = {"partition": "dirichlet", "alpha": 0.5, "min_samples": 16}
        assert_sharded_identical(_specs("h", hetero=hetero))

    def test_numpy_opt_backend_propagates_to_chunk_workers(self):
        specs = _specs("k")
        with use_backend("reference"):
            want = run_batched_scenarios([spec.replace() for spec in specs])
        with use_backend("numpy-opt"):
            got = run_batched_scenarios([spec.replace() for spec in specs],
                                        lanes=2)
        for reference, sharded in zip(want, got):
            assert reference.to_dict() == sharded.to_dict()


class TestValidation:
    def test_mixed_group_rejected_in_parent(self):
        # The specs differ in more than seed/name; with lane_chunk=1 each
        # chunk would be internally consistent, so only a parent-side
        # cross-check can catch the mix.
        specs = [ScenarioSpec(name="a", seed=1, **_small()),
                 ScenarioSpec(name="b", seed=2, **_small(batch_size=8))]
        with pytest.raises(ValueError, match="differ only"):
            run_batched_scenarios(specs, lanes=2, lane_chunk=1)

    def test_non_positive_lanes_rejected(self):
        with pytest.raises(ValueError, match="lanes"):
            run_batched_scenarios(_specs("n"), lanes=0)

    def test_non_positive_lane_chunk_rejected(self):
        with pytest.raises(ValueError, match="lane_chunk"):
            run_batched_scenarios(_specs("n"), lanes=2, lane_chunk=0)

    def test_unbatchable_spec_raises_batching_unsupported(self):
        spec = ScenarioSpec(name="t", trainer="guanyu_threaded",
                            num_steps=4)
        with pytest.raises(BatchingUnsupported):
            run_batched_scenarios([spec], lanes=2)

    def test_chunk_size_covering_all_specs_stays_single_process(self):
        # lane_chunk >= len(specs) means one chunk: no pool is spawned and
        # the call degenerates to the single-process path.
        specs = _specs("s")[:2]
        histories = run_batched_scenarios(specs, lanes=4, lane_chunk=8)
        assert len(histories) == 2


class TestEnginePlumbing:
    def test_run_campaign_lanes_matches_unsharded(self):
        specs = _specs("e")
        plain = run_campaign([spec.replace() for spec in specs],
                             batch_seeds=True)
        sharded = run_campaign([spec.replace() for spec in specs],
                               batch_seeds=True, lanes=2)
        assert [outcome.status for outcome in sharded.outcomes] == \
            [outcome.status for outcome in plain.outcomes]
        assert all(outcome.batched for outcome in sharded.outcomes
                   if outcome.status == "ran")
        for name, history in plain.histories().items():
            assert history.to_dict() == sharded.histories()[name].to_dict()

    def test_run_campaign_lanes_with_pool_and_mixed_tasks(self):
        # Batch groups run lane-sharded in the foreground while the lone
        # (unbatchable-by-grouping) scenarios go to the scenario pool.
        specs = _specs("m") + [
            ScenarioSpec(name="lone", seed=99,
                         **_small(learning_rate=0.04))]
        plain = run_campaign([spec.replace() for spec in specs],
                             batch_seeds=True)
        sharded = run_campaign([spec.replace() for spec in specs],
                               batch_seeds=True, lanes=2, processes=2)
        assert sharded.counts()["failed"] == 0
        for name, history in plain.histories().items():
            assert history.to_dict() == sharded.histories()[name].to_dict()
