"""Live-telemetry layer: registry, exposition, HTTP endpoint, recorder.

Covers the metric primitives (counters/gauges/histograms with label sets),
the snapshot/merge path that ships node registries across process
boundaries, the Prometheus text round-trip, the ``/metrics``-``/status``-
``/healthz`` HTTP endpoint, the crash-report flight recorder, gzip trace
export, the monitor dashboard renderer, and the instrumentation hooks in
the campaign engine / runtimes (only active when a registry is installed).
"""

from __future__ import annotations

import gzip
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign import ResultStore, run_campaign
from repro.campaign.engine import execute_scenario
from repro.campaign.spec import ScenarioSpec
from repro.batch import run_batched_scenarios
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    NullRegistry,
    Tracer,
    crash_report_path,
    get_registry,
    parse_prometheus_text,
    read_jsonl,
    use_registry,
    use_tracer,
    write_crash_report,
)
from repro.obs.telemetry import METRIC_HELP
from repro.plotting import render_dashboard, scenarios_completed
from repro.runtime.cluster import cluster_available

needs_sockets = pytest.mark.skipif(
    not cluster_available(), reason="host cannot bind sockets")


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(name="tiny", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=4, eval_every=2, dataset_size=300,
                max_eval_samples=64)
    base.update(overrides)
    return ScenarioSpec(**base)


# --------------------------------------------------------------------------- #
# Registry primitives
# --------------------------------------------------------------------------- #
class TestPrimitives:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", route="a")
        registry.inc("requests_total", 2.5, route="a")
        registry.inc("requests_total", route="b")
        counter = registry.counter("requests_total")
        assert counter.value(route="a") == 3.5
        assert counter.value(route="b") == 1.0
        assert counter.value(route="missing") == 0.0

    def test_gauge_set_add_and_none_default(self):
        registry = MetricsRegistry()
        assert registry.gauge("depth").value() is None
        registry.set_gauge("depth", 4.0)
        registry.add_gauge("depth", -1.5)
        assert registry.gauge("depth").value() == 2.5

    def test_histogram_stats_and_timer(self):
        registry = MetricsRegistry()
        for value in (0.002, 0.002, 0.2):
            registry.observe("latency_seconds", value, op="put")
        stats = registry.histogram("latency_seconds").stats(op="put")
        assert stats["count"] == 3
        assert stats["sum"] == pytest.approx(0.204)
        with registry.timer("latency_seconds", op="timed"):
            time.sleep(0.001)
        timed = registry.histogram("latency_seconds").stats(op="timed")
        assert timed["count"] == 1 and timed["sum"] > 0.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.inc("thing")
        with pytest.raises(TypeError):
            registry.set_gauge("thing", 1.0)

    def test_known_names_carry_catalogue_help(self):
        registry = MetricsRegistry()
        registry.inc("repro_campaign_scenarios_total", status="ran")
        text = registry.render_prometheus()
        assert ("# HELP repro_campaign_scenarios_total "
                + METRIC_HELP["repro_campaign_scenarios_total"]) in text


class TestActivation:
    def test_default_is_null_registry(self):
        registry = get_registry()
        assert isinstance(registry, NullRegistry)
        assert not registry.enabled
        # All hooks are no-ops and the timer is reusable.
        registry.inc("x")
        registry.observe("x", 1.0)
        with registry.timer("x"):
            pass
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {"metrics": {}}

    def test_use_registry_scopes_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert get_registry() is registry
            get_registry().inc("scoped_total")
        assert isinstance(get_registry(), NullRegistry)
        assert registry.counter("scoped_total").value() == 1.0


# --------------------------------------------------------------------------- #
# Snapshot / merge / exposition
# --------------------------------------------------------------------------- #
class TestSnapshotMerge:
    def test_counters_and_buckets_add_gauges_overwrite(self):
        source = MetricsRegistry()
        source.inc("ops_total", 2.0, op="put")
        source.set_gauge("entries", 7.0)
        source.observe("op_seconds", 0.004, op="put")
        target = MetricsRegistry()
        target.inc("ops_total", 1.0, op="put")
        target.set_gauge("entries", 3.0)
        snapshot = source.snapshot()
        target.merge(snapshot)
        target.merge(snapshot)
        assert target.counter("ops_total").value(op="put") == 5.0
        assert target.gauge("entries").value() == 7.0
        assert target.histogram("op_seconds").stats(op="put")["count"] == 2

    def test_extra_labels_stamp_the_origin(self):
        node = MetricsRegistry()
        node.inc("frames_total", 4.0, direction="out")
        supervisor = MetricsRegistry()
        supervisor.merge(node.snapshot(), extra_labels={"node": "worker/0"})
        counter = supervisor.counter("frames_total")
        assert counter.value(direction="out", node="worker/0") == 4.0
        assert counter.value(direction="out") == 0.0

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.inc("a_total", label="v")
        registry.observe("b_seconds", 0.5)
        restored = json.loads(json.dumps(registry.snapshot()))
        other = MetricsRegistry()
        other.merge(restored)
        assert other.counter("a_total").value(label="v") == 1.0


class TestPrometheusRoundTrip:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.describe("req_total", "requests")
        registry.inc("req_total", 3.0, code="200", path='with"quote')
        registry.set_gauge("up", 1.0)
        registry.observe("dur_seconds", 0.003)
        registry.observe("dur_seconds", 40.0)
        families = parse_prometheus_text(registry.render_prometheus())
        assert families["req_total"]["type"] == "counter"
        assert families["req_total"]["help"] == "requests"
        (sample,) = families["req_total"]["samples"]
        assert sample["labels"] == {"code": "200", "path": 'with"quote'}
        assert sample["value"] == 3.0
        assert families["up"]["type"] == "gauge"
        histogram = families["dur_seconds"]
        assert histogram["type"] == "histogram"
        names = {s["name"] for s in histogram["samples"]}
        assert names == {"dur_seconds_bucket", "dur_seconds_sum",
                         "dur_seconds_count"}
        inf_bucket = [s for s in histogram["samples"]
                      if s["name"] == "dur_seconds_bucket"
                      and s["labels"]["le"] == "+Inf"]
        assert inf_bucket[0]["value"] == 2.0

    def test_malformed_text_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("what is this line")


# --------------------------------------------------------------------------- #
# HTTP endpoint
# --------------------------------------------------------------------------- #
@needs_sockets
class TestMetricsServer:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as reply:
            return reply.status, reply.headers.get("Content-Type"), \
                reply.read().decode("utf-8")

    def test_serves_metrics_status_healthz(self):
        registry = MetricsRegistry()
        registry.inc("repro_campaign_scenarios_total", 2.0, status="ran")
        with MetricsServer(0, registry=registry,
                           status=lambda: {"completed": 2}) as server:
            status, content_type, body = self._get(server.url + "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain")
            families = parse_prometheus_text(body)
            assert scenarios_completed(families) == 2.0

            status, _, body = self._get(server.url + "/healthz")
            assert (status, body) == (200, "ok\n")

            status, content_type, body = self._get(server.url + "/status")
            assert status == 200
            assert "json" in content_type
            assert json.loads(body) == {"completed": 2}

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/nope")
            assert excinfo.value.code == 404


# --------------------------------------------------------------------------- #
# Flight recorder
# --------------------------------------------------------------------------- #
class TestCrashReports:
    def test_report_lands_beside_the_store(self, tmp_path):
        assert crash_report_path("run", store_root=str(tmp_path)) == \
            str(tmp_path / "run.crash.json")

    def test_report_carries_trace_and_metrics(self, tmp_path):
        tracer = Tracer()
        tracer.event("boom", step=3)
        registry = MetricsRegistry()
        registry.inc("repro_campaign_scenarios_total", status="failed")
        path = write_crash_report(
            "my run", "scenario-failure", store_root=str(tmp_path),
            tracer=tracer, registry=registry, context={"failed": ["s1"]})
        report = json.loads((tmp_path / "my-run.crash.json").read_text())
        assert path == str(tmp_path / "my-run.crash.json")
        assert report["kind"] == "repro.crash_report"
        assert report["reason"] == "scenario-failure"
        assert report["context"] == {"failed": ["s1"]}
        assert report["trace"]["enabled"] is True
        assert any(record["name"] == "boom"
                   for record in report["trace"]["events"])
        assert "repro_campaign_scenarios_total" in report["metrics"]["metrics"]


# --------------------------------------------------------------------------- #
# Gzip trace export
# --------------------------------------------------------------------------- #
class TestGzipTraces:
    def _tracer(self):
        tracer = Tracer()
        tracer.event("alpha", step=1)
        tracer.event("beta", step=2)
        return tracer

    def test_gz_suffix_compresses_and_reads_back(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        written = self._tracer().export(str(path))
        assert written == 2
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # gzip magic
        records = list(read_jsonl(str(path)))
        assert [record.name for record in records] == ["alpha", "beta"]

    def test_explicit_compress_flag_overrides_suffix(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._tracer().export(str(path), compress=True)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == 2
        assert [r.name for r in read_jsonl(str(path))] == ["alpha", "beta"]

    def test_plain_export_still_plain(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._tracer().export(str(path))
        first = path.read_text().splitlines()[0]
        assert json.loads(first)["name"] == "alpha"

    def test_cli_trace_reads_gz(self, tmp_path, capsys):
        from repro import cli

        path = tmp_path / "trace.jsonl.gz"
        self._tracer().export(str(path))
        assert cli.main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out


# --------------------------------------------------------------------------- #
# Monitor dashboard rendering
# --------------------------------------------------------------------------- #
class TestDashboard:
    def _families(self):
        registry = MetricsRegistry()
        registry.inc("repro_campaign_scenarios_total", 3.0, status="ran")
        registry.inc("repro_campaign_scenarios_total", 1.0, status="failed")
        registry.inc("repro_campaign_cache_total", 2.0, result="hit")
        registry.observe("repro_step_phase_seconds", 0.004,
                         runtime="seq", phase="compute")
        registry.set_gauge("repro_cluster_node_up", 1.0, node="ps/0")
        registry.set_gauge("repro_cluster_node_up", 0.0, node="worker/1")
        registry.inc("repro_cluster_respawns_total", 2.0, node="worker/1")
        registry.observe("repro_cluster_probe_rtt_seconds", 0.02,
                         node="ps/0")
        registry.inc("repro_gar_decisions_total", 5.0, rule="multi_krum")
        registry.set_gauge("repro_gar_attacker_acceptance", 0.25,
                           rule="multi_krum")
        return parse_prometheus_text(registry.render_prometheus())

    def test_scenarios_completed_sums_statuses(self):
        assert scenarios_completed(self._families()) == 4.0

    def test_dashboard_sections_render(self):
        status = {"command": "sweep", "campaign": "nightly", "total": 8,
                  "completed": 4,
                  "counts": {"ran": 3, "cached": 0, "failed": 1},
                  "elapsed_seconds": 12.5}
        frame = render_dashboard(self._families(), status,
                                 throughput=[0.0, 0.5, 1.0])
        assert "repro monitor — sweep 'nightly'" in frame
        assert "4/8" in frame
        assert "failed=1" in frame
        assert "scenario/s" in frame
        assert "compute" in frame
        assert "worker/1" in frame and "NO" in frame
        assert "multi_krum" in frame and "0.250" in frame

    def test_empty_dashboard_is_calm(self):
        frame = render_dashboard({}, {})
        assert "(no samples yet)" in frame


# --------------------------------------------------------------------------- #
# Instrumentation hooks (campaign engine, store, runtimes)
# --------------------------------------------------------------------------- #
class TestInstrumentation:
    def test_sequential_run_populates_phase_histograms(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            execute_scenario(tiny_spec())
        histogram = registry.histogram("repro_step_phase_seconds")
        for phase in ("broadcast", "compute", "gather", "aggregate", "apply"):
            stats = histogram.stats(runtime="seq", phase=phase)
            assert stats is not None and stats["count"] == 4

    def test_gar_metrics_require_decision_records(self):
        spec = tiny_spec(worker_attack="random_gradient")
        registry = MetricsRegistry()
        with use_registry(registry), \
                use_tracer(Tracer(record_decisions=True)):
            execute_scenario(spec)
        decisions = registry.counter("repro_gar_decisions_total")
        assert decisions.value(rule="multi_krum") > 0
        acceptance = registry.gauge("repro_gar_attacker_acceptance") \
            .value(rule="multi_krum")
        assert acceptance is not None and 0.0 <= acceptance <= 1.0

    def test_campaign_counters_and_cache(self, tmp_path):
        scenarios = [tiny_spec(name=f"c{seed}", seed=seed)
                     for seed in (0, 1)]
        store = ResultStore(str(tmp_path / "store"))
        registry = MetricsRegistry()
        with use_registry(registry):
            run_campaign(scenarios, name="first", store=store)
            run_campaign(scenarios, name="second", store=store)
        counter = registry.counter("repro_campaign_scenarios_total")
        assert counter.value(status="ran") == 2.0
        assert counter.value(status="cached") == 2.0
        cache = registry.counter("repro_campaign_cache_total")
        assert cache.value(result="miss") == 2.0
        assert cache.value(result="hit") == 2.0
        assert registry.gauge("repro_campaign_scenarios_pending").value() == 0
        # Store ops flowed through the instrumented put/get.
        ops = registry.counter("repro_store_ops_total")
        assert ops.value(op="put") == 2.0
        assert ops.value(op="get") >= 2.0
        # Worker-side metrics crossed the process boundary into the parent.
        scenario_seconds = registry.histogram(
            "repro_campaign_scenario_seconds")
        assert scenario_seconds.stats(batched="false")["count"] == 2

    def test_batched_run_records_lane_chunks(self):
        specs = [ScenarioSpec(name=f"s{seed}", seed=seed, num_steps=4,
                              eval_every=2, dataset_size=300,
                              max_eval_samples=64) for seed in (0, 1)]
        registry = MetricsRegistry()
        with use_registry(registry):
            run_batched_scenarios(specs)
        stats = registry.histogram("repro_step_phase_seconds") \
            .stats(runtime="batch", phase="compute")
        assert stats is not None and stats["count"] == 4


@needs_sockets
@pytest.mark.timeout(180)
class TestClusterTelemetry:
    def test_node_registries_merge_supervisor_side(self):
        from repro.runtime.cluster import ClusterRuntime

        spec = ScenarioSpec(name="cluster-tel", trainer="guanyu_threaded",
                            runtime="cluster", num_workers=4, num_servers=3,
                            declared_byzantine_workers=0,
                            declared_byzantine_servers=0,
                            model_quorum=3, gradient_quorum=4,
                            gradient_rule="median", model_rule="median",
                            num_steps=2, seed=9, quorum_timeout=30.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            ClusterRuntime(spec).run(spec.num_steps)
        # Supervisor-side health gauges: every node came up, one
        # incarnation each, no respawns.
        up = registry.gauge("repro_cluster_node_up")
        incarnations = registry.gauge("repro_cluster_node_incarnations")
        for node in ("ps/0", "ps/1", "ps/2",
                     "worker/0", "worker/1", "worker/2", "worker/3"):
            assert up.value(node=node) == 1.0
            assert incarnations.value(node=node) == 1.0
        # Supervisor-side protocol counters: frames flowed both ways.
        frames = registry.counter("repro_cluster_frames_total")
        assert frames.value(direction="in", kind="done") >= 7.0
        assert frames.value(direction="out", kind="start") == 7.0
        assert registry.counter("repro_cluster_bytes_total") \
            .value(direction="in") > 0.0
        # Node-local registries travelled over the 'metrics' frame and
        # merged with the shipping node's id stamped on every series.
        histogram = registry.histogram("repro_step_phase_seconds")
        compute = histogram.stats(runtime="cluster", phase="compute",
                                  node="worker/0")
        assert compute is not None and compute["count"] == 2
        aggregate = histogram.stats(runtime="cluster", phase="aggregate",
                                    node="ps/0")
        assert aggregate is not None and aggregate["count"] == 2
        # Probe RTTs only appear when the supervisor had time to ping, so
        # just assert the metric is well-formed if present.
        rtt = registry.histogram("repro_cluster_probe_rtt_seconds")
        for entry in rtt.snapshot()["series"]:
            assert entry["sum"] >= 0.0


@needs_sockets
class TestTelemetryCli:
    def test_sweep_metrics_port_and_snapshot(self, tmp_path, capsys):
        from repro import cli

        snapshot_path = tmp_path / "metrics.json"
        code = cli.main(["--steps", "2", "sweep", "--gars", "mean",
                         "--seeds", "0", "--processes", "1",
                         "--metrics-port", "0",
                         "--metrics-snapshot", str(snapshot_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "metrics endpoint: http://127.0.0.1:" in captured.err
        snapshot = json.loads(snapshot_path.read_text())
        totals = snapshot["metrics"]["repro_campaign_scenarios_total"]
        assert sum(entry["value"] for entry in totals["series"]) == 1.0

    def test_monitor_renders_one_frame(self, capsys):
        from repro import cli

        registry = MetricsRegistry()
        registry.inc("repro_campaign_scenarios_total", status="ran")
        status = {"command": "sweep", "campaign": "watched", "total": 2,
                  "completed": 1, "counts": {"ran": 1}}
        with MetricsServer(0, registry=registry,
                           status=lambda: status) as server:
            code = cli.main(["monitor", "--url", server.url,
                             "--iterations", "1", "--interval", "0.1",
                             "--no-clear"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro monitor — sweep 'watched'" in out
        assert "1/2" in out

    def test_monitor_without_target_exits_2(self, capsys):
        from repro import cli

        assert cli.main(["monitor"]) == 2
        assert "needs --port or --url" in capsys.readouterr().err
