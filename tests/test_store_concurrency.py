"""Concurrent-writer safety of the content-addressed ResultStore.

The cluster runtime put multiple OS processes on this machine for the
first time, and ``repro sweep --processes N`` has always fanned out over a
pool — so two processes racing ``store.put`` on the *same* content address
(identical scenario run twice) and on *different* addresses must never
corrupt an entry.  The store's temp-file + ``os.replace`` write discipline
is what makes this safe; these tests hammer it from real processes.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.campaign import ResultStore, ScenarioSpec
from repro.campaign.engine import execute_scenario
from repro.obs import TrainingHistory


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(name="tiny", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=2, eval_every=2, dataset_size=300,
                max_eval_samples=64)
    base.update(overrides)
    return ScenarioSpec(**base)


def _hammer(root: str, spec_payloads, history_payload, rounds: int) -> None:
    """Child-process body: repeatedly put every spec into the store."""
    store = ResultStore(root)
    history = TrainingHistory.from_dict(history_payload)
    for _ in range(rounds):
        for payload in spec_payloads:
            store.put(ScenarioSpec.from_dict(payload), history,
                      duration_seconds=0.1)


@pytest.mark.timeout(120)
class TestConcurrentWriters:
    def test_same_and_different_addresses_from_two_processes(self, tmp_path):
        root = str(tmp_path / "store")
        shared = tiny_spec(name="shared")  # both processes write this key
        history = execute_scenario(shared)
        payload = history.to_dict()

        # each process also writes its own distinct addresses
        own_a = [tiny_spec(name=f"a{seed}", seed=seed).to_dict()
                 for seed in (101, 102)]
        own_b = [tiny_spec(name=f"b{seed}", seed=seed).to_dict()
                 for seed in (201, 202)]
        procs = [
            multiprocessing.Process(
                target=_hammer,
                args=(root, [shared.to_dict()] + own, payload, 25))
            for own in (own_a, own_b)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=90)
            assert proc.exitcode == 0

        store = ResultStore(root)
        expected_keys = {shared.spec_hash()} | \
            {ScenarioSpec.from_dict(p).spec_hash() for p in own_a + own_b}
        assert set(store.keys()) == expected_keys
        assert len(store) == 5
        # every entry must be intact JSON with a readable history — a torn
        # write would explode here
        for key in store.keys():
            stored = store.get(key)
            assert stored.history.to_dict() == payload
            assert stored.key == key

    def test_concurrent_puts_of_identical_content_are_idempotent(self,
                                                                 tmp_path):
        root = str(tmp_path / "store")
        spec = tiny_spec(name="idem")
        history = execute_scenario(spec)
        procs = [multiprocessing.Process(
            target=_hammer, args=(root, [spec.to_dict()],
                                  history.to_dict(), 50))
            for _ in range(3)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=90)
            assert proc.exitcode == 0
        store = ResultStore(root)
        assert len(store) == 1
        assert store.get(spec.spec_hash()).spec == spec
