"""Tier-1 guarantee: tracing is zero-perturbation.

Recording a trace must not change what the traced computation computes:
the equivalence guarantees of the runtimes (sequential↔batched
bit-identity, sequential↔threaded loss-trajectory identity) and plain
traced-vs-untraced runs are re-asserted here with a live tracer — GAR
decision records included, since those recompute selection on the side.
Everything is compared with ``==`` on the serialised histories; nothing
uses a tolerance.
"""

from repro.batch import run_batched_scenarios
from repro.campaign.engine import execute_scenario, run_campaign
from repro.campaign.spec import ScenarioSpec
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer

SEEDS = (0, 1, 7)


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(name="tiny", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=4, eval_every=2, dataset_size=300,
                max_eval_samples=64)
    base.update(overrides)
    return ScenarioSpec(**base)


def traced(fn, **tracer_kwargs):
    """Run ``fn`` under a fresh recording tracer; return (result, tracer)."""
    tracer = Tracer(record_decisions=True, **tracer_kwargs)
    with use_tracer(tracer):
        result = fn()
    return result, tracer


class TestSequentialUnperturbed:
    def test_traced_history_equals_untraced(self):
        spec = tiny_spec(worker_attack="random_gradient")
        baseline = execute_scenario(spec)
        history, tracer = traced(lambda: execute_scenario(spec))
        assert history.to_dict() == baseline.to_dict()
        # ... and the trace actually recorded the run (not vacuous).
        spans = {record.name for record in tracer.events()
                 if record.kind == "span"}
        assert "seq.step.aggregate" in spans
        decisions = [record for record in tracer.events()
                     if record.name == "seq.gar.decision"]
        assert decisions, "record_decisions=True must emit decision records"

    def test_tiny_ring_buffer_still_unperturbed(self):
        # Heavy truncation exercises the drop path mid-run.
        spec = tiny_spec()
        baseline = execute_scenario(spec)
        history, tracer = traced(lambda: execute_scenario(spec), capacity=8)
        assert history.to_dict() == baseline.to_dict()
        assert tracer.dropped > 0


class TestBatchedBitIdentityTraced:
    def test_batched_equals_sequential_with_tracing_on(self):
        specs = [ScenarioSpec(name=f"s{seed}", seed=seed, num_steps=8,
                              eval_every=3, dataset_size=400,
                              max_eval_samples=64) for seed in SEEDS]
        sequential = [execute_scenario(spec) for spec in specs]
        batched, tracer = traced(lambda: run_batched_scenarios(specs))
        for batched_history, sequential_history in zip(batched, sequential):
            assert batched_history.to_dict() == sequential_history.to_dict()
        spans = {record.name for record in tracer.events()
                 if record.kind == "span"}
        assert {"batch.step.broadcast", "batch.step.compute",
                "batch.step.gather", "batch.step.aggregate",
                "batch.step.apply"} <= spans

    def test_traced_batched_equals_untraced_batched(self):
        specs = [ScenarioSpec(name=f"b{seed}", seed=seed, num_steps=6,
                              eval_every=2, dataset_size=300,
                              max_eval_samples=64,
                              worker_attack="random_gradient",
                              declared_byzantine_workers=1)
                 for seed in SEEDS]
        baseline = run_batched_scenarios(specs)
        histories, _ = traced(lambda: run_batched_scenarios(specs))
        for history, expected in zip(histories, baseline):
            assert history.to_dict() == expected.to_dict()


class TestThreadedLossTrajectoryTraced:
    def test_traced_threaded_losses_equal_untraced(self):
        # Full quorums: every message is awaited, so the loss trajectory is
        # deterministic despite real threads — partial quorums race on
        # arrival order and differ run-to-run even without tracing.
        spec = tiny_spec(trainer="guanyu_threaded", num_steps=3,
                         declared_byzantine_workers=0,
                         gradient_quorum=6, model_quorum=3,
                         quorum_timeout=30.0)

        def losses(history):
            return [record.train_loss for record in history.records]

        baseline = execute_scenario(spec)
        history, tracer = traced(lambda: execute_scenario(spec))
        assert losses(history) == losses(baseline)
        spans = {record.name for record in tracer.events()
                 if record.kind == "span"}
        assert "thr.worker.compute" in spans
        assert "thr.server.aggregate" in spans


class TestTelemetryUnperturbed:
    """The metrics registry honours the same zero-perturbation contract."""

    def test_sequential_with_telemetry_equals_plain(self):
        spec = tiny_spec(worker_attack="random_gradient")
        baseline = execute_scenario(spec)
        registry = MetricsRegistry()
        with use_registry(registry), \
                use_tracer(Tracer(record_decisions=True)):
            history = execute_scenario(spec)
        assert history.to_dict() == baseline.to_dict()
        # ... and the registry actually measured the run (not vacuous).
        stats = registry.histogram("repro_step_phase_seconds") \
            .stats(runtime="seq", phase="aggregate")
        assert stats is not None and stats["count"] == spec.num_steps

    def test_batched_equals_sequential_with_telemetry_on(self):
        specs = [ScenarioSpec(name=f"t{seed}", seed=seed, num_steps=8,
                              eval_every=3, dataset_size=400,
                              max_eval_samples=64) for seed in SEEDS]
        sequential = [execute_scenario(spec) for spec in specs]
        registry = MetricsRegistry()
        with use_registry(registry):
            batched = run_batched_scenarios(specs)
        for batched_history, sequential_history in zip(batched, sequential):
            assert batched_history.to_dict() == sequential_history.to_dict()
        assert registry.histogram("repro_step_phase_seconds") \
            .stats(runtime="batch", phase="compute")["count"] == 8

    def test_threaded_losses_with_telemetry_equal_plain(self):
        # Full quorums, as in the traced variant above: deterministic loss
        # trajectory despite real threads.
        spec = tiny_spec(trainer="guanyu_threaded", num_steps=3,
                         declared_byzantine_workers=0,
                         gradient_quorum=6, model_quorum=3,
                         quorum_timeout=30.0)

        def losses(history):
            return [record.train_loss for record in history.records]

        baseline = execute_scenario(spec)
        registry = MetricsRegistry()
        with use_registry(registry):
            history = execute_scenario(spec)
        assert losses(history) == losses(baseline)
        assert registry.histogram("repro_step_phase_seconds") \
            .stats(runtime="threads", phase="compute") is not None


class TestCampaignUnperturbed:
    def test_traced_campaign_histories_equal_untraced(self):
        scenarios = [tiny_spec(name=f"c{seed}", seed=seed)
                     for seed in (0, 1)]
        baseline = run_campaign(scenarios, name="plain")
        result, tracer = traced(
            lambda: run_campaign(scenarios, name="traced"))
        for outcome, expected in zip(result.outcomes, baseline.outcomes):
            assert outcome.history.to_dict() == expected.history.to_dict()
        assert tracer.counters().get("campaign.cache_miss") == 2
        events = {record.name for record in tracer.events()
                  if record.kind == "event"}
        assert "campaign.scenario" in events
