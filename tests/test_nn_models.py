"""Tests for the model zoo, in particular the paper's Table 1 CNN."""

import numpy as np
import pytest

from repro.nn import MLP, PaperCNN, SmallCNN, SoftmaxRegression, build_model
from repro.tensor import Tensor


class TestPaperCNN:
    """Table 1: the CIFAR-10 CNN with roughly 1.75 million parameters."""

    def test_parameter_count_matches_table1(self):
        model = PaperCNN()
        # The paper states "a total of 1.75M parameters".
        assert abs(model.num_parameters() - 1.75e6) < 0.02e6

    def test_layer_shapes_follow_table1(self):
        model = PaperCNN()
        assert model.conv1.weight.shape == (64, 3, 5, 5)
        assert model.conv2.weight.shape == (64, 64, 5, 5)
        assert model.fc1.weight.shape == (64 * 8 * 8, 384)
        assert model.fc2.weight.shape == (384, 192)
        assert model.fc3.weight.shape == (192, 10)

    def test_forward_output_shape(self):
        model = PaperCNN()
        out = model(Tensor(np.zeros((2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_same_seed_builds_identical_models(self):
        a = PaperCNN(seed=3)
        b = PaperCNN(seed=3)
        assert np.allclose(a.get_flat_parameters(), b.get_flat_parameters())


class TestOtherModels:
    def test_small_cnn_forward(self):
        model = SmallCNN(image_size=16)
        assert model(Tensor(np.zeros((4, 3, 16, 16)))).shape == (4, 10)

    def test_small_cnn_much_smaller_than_paper_cnn(self):
        assert SmallCNN().num_parameters() < PaperCNN().num_parameters() / 50

    def test_mlp_flattens_image_inputs(self):
        model = MLP(3 * 8 * 8, (16,), 10)
        assert model(Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 10)

    def test_softmax_regression_shapes(self):
        model = SoftmaxRegression(20, 4)
        assert model(Tensor(np.zeros((7, 20)))).shape == (7, 4)
        assert model.num_parameters() == 20 * 4 + 4


class TestBuildModel:
    def test_build_all_registered_models(self):
        assert isinstance(build_model("paper_cnn"), PaperCNN)
        assert isinstance(build_model("small_cnn"), SmallCNN)
        assert isinstance(build_model("mlp", in_features=8, num_classes=2), MLP)
        assert isinstance(build_model("softmax", in_features=8, num_classes=2),
                          SoftmaxRegression)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet152")

    def test_factory_seed_determinism(self):
        a = build_model("mlp", in_features=6, num_classes=3, seed=9)
        b = build_model("mlp", in_features=6, num_classes=3, seed=9)
        assert np.allclose(a.get_flat_parameters(), b.get_flat_parameters())
