"""Tests for the worker and parameter-server node state machines."""

import numpy as np
import pytest

from repro.aggregation import ArithmeticMean, CoordinateWiseMedian, MultiKrum
from repro.byzantine import RandomGradientAttack, SilentServer, SignFlipAttack
from repro.core.nodes import ServerNode, WorkerNode, max_pairwise_distance
from repro.data import DataLoader, make_blobs_dataset
from repro.nn import build_model
from repro.nn.schedules import ConstantSchedule
from repro.tensor import Tensor
from repro.nn.losses import CrossEntropyLoss


def _make_worker(attack=None, seed=0):
    data = make_blobs_dataset(num_samples=64, num_features=4, num_classes=3, seed=seed)
    loader = DataLoader(data, batch_size=16, seed=seed)
    model = build_model("softmax", in_features=4, num_classes=3, seed=1)
    return WorkerNode("worker/0", model, loader,
                      model_aggregator=CoordinateWiseMedian(), attack=attack,
                      seed=seed)


def _make_server(attack=None, lr=0.1):
    model = build_model("softmax", in_features=4, num_classes=3, seed=1)
    return ServerNode("ps/0", model, gradient_aggregator=MultiKrum(num_byzantine=0),
                      model_aggregator=CoordinateWiseMedian(),
                      schedule=ConstantSchedule(lr), attack=attack)


class TestWorkerNode:
    def test_gradient_has_model_dimension(self):
        worker = _make_worker()
        theta = worker.model.get_flat_parameters()
        result = worker.compute_gradient([theta, theta, theta], step=0)
        assert result.gradient.shape == theta.shape
        assert result.loss > 0.0

    def test_aggregates_received_models_with_median(self):
        worker = _make_worker()
        d = worker.model.num_parameters()
        vectors = [np.zeros(d), np.ones(d), np.full(d, 2.0)]
        worker.compute_gradient(vectors, step=0)
        # After aggregation the worker's model holds the coordinate-wise median.
        assert np.allclose(worker.model.get_flat_parameters(), 1.0)

    def test_gradient_matches_direct_computation(self):
        worker = _make_worker(seed=3)
        theta = worker.model.get_flat_parameters()
        result = worker.compute_gradient([theta], step=0)

        # Recompute by hand with the same batch (loader is deterministic).
        reference_loader = DataLoader(worker.loader.dataset, batch_size=16, seed=3)
        features, labels = reference_loader.next_batch()
        model = build_model("softmax", in_features=4, num_classes=3, seed=1)
        model.set_flat_parameters(theta)
        model.zero_grad()
        loss = CrossEntropyLoss()(model(Tensor(features)), labels)
        loss.backward()
        assert np.allclose(result.gradient, model.get_flat_gradient())

    def test_honest_worker_sends_computed_gradient(self):
        worker = _make_worker()
        theta = worker.model.get_flat_parameters()
        result = worker.compute_gradient([theta], step=0)
        assert worker.outgoing_gradient(result, step=0) is result.gradient

    def test_byzantine_worker_corrupts_outgoing_gradient(self):
        worker = _make_worker(attack=SignFlipAttack())
        theta = worker.model.get_flat_parameters()
        result = worker.compute_gradient([theta], step=0)
        outgoing = worker.outgoing_gradient(result, step=0)
        assert np.allclose(outgoing, -result.gradient)

    def test_is_byzantine_flag(self):
        assert not _make_worker().is_byzantine
        assert _make_worker(attack=RandomGradientAttack()).is_byzantine


class TestServerNode:
    def test_apply_gradients_is_sgd_step_with_aggregation(self):
        server = _make_server(lr=0.5)
        d = server.model.num_parameters()
        before = server.current_parameters()
        gradients = [np.ones(d)] * 5
        updated = server.apply_gradients(gradients, step=0)
        assert np.allclose(updated, before - 0.5)
        assert np.allclose(server.current_parameters(), updated)

    def test_merge_models_installs_median(self):
        server = _make_server()
        d = server.model.num_parameters()
        server.merge_models([np.zeros(d), np.full(d, 4.0), np.full(d, 2.0)])
        assert np.allclose(server.current_parameters(), 2.0)

    def test_learning_rate_follows_schedule(self):
        server = _make_server(lr=0.01)
        assert server.learning_rate(0) == pytest.approx(0.01)
        assert server.learning_rate(500) == pytest.approx(0.01)

    def test_honest_server_sends_true_parameters(self):
        server = _make_server()
        assert np.allclose(server.outgoing_model(0), server.current_parameters())

    def test_byzantine_server_can_be_silent(self):
        server = _make_server(attack=SilentServer())
        assert server.outgoing_model(0) is None
        assert server.is_byzantine

    def test_uses_multi_krum_to_filter_outlier_gradients(self):
        model = build_model("softmax", in_features=4, num_classes=3, seed=1)
        server = ServerNode("ps/0", model,
                            gradient_aggregator=MultiKrum(num_byzantine=1),
                            model_aggregator=CoordinateWiseMedian(),
                            schedule=ConstantSchedule(1.0))
        d = model.num_parameters()
        rng = np.random.default_rng(0)
        honest = [rng.normal(0, 0.01, d) for _ in range(6)]
        byzantine = [np.full(d, 1e6)]
        before = server.current_parameters()
        server.apply_gradients(honest + byzantine, step=0)
        # The huge Byzantine gradient must not have moved the model far.
        assert np.linalg.norm(server.current_parameters() - before) < 1.0

    def test_mean_aggregation_is_vulnerable_for_contrast(self):
        model = build_model("softmax", in_features=4, num_classes=3, seed=1)
        server = ServerNode("ps/0", model, gradient_aggregator=ArithmeticMean(),
                            model_aggregator=CoordinateWiseMedian(),
                            schedule=ConstantSchedule(1.0))
        d = model.num_parameters()
        before = server.current_parameters()
        server.apply_gradients([np.zeros(d)] * 6 + [np.full(d, 1e6)], step=0)
        assert np.linalg.norm(server.current_parameters() - before) > 1e4


class TestMaxPairwiseDistance:
    def test_zero_for_single_vector(self):
        assert max_pairwise_distance([np.ones(3)]) == 0.0

    def test_known_value(self):
        vectors = [np.zeros(2), np.array([3.0, 4.0]), np.array([1.0, 1.0])]
        assert max_pairwise_distance(vectors) == pytest.approx(5.0)

    def test_identical_vectors_give_exactly_zero(self):
        # Servers that agree after the phase-3 median must report spread 0.0,
        # not the Gram-matrix cancellation noise floor (~1e-8).
        vector = np.random.default_rng(3).normal(size=2000) * 10.0
        assert max_pairwise_distance([vector.copy() for _ in range(4)]) == 0.0
