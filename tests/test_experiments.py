"""Tests for the experiment harnesses (fast, tiny scales).

The full-size shape assertions live in ``benchmarks/``; these tests check
that every harness runs end-to-end, returns the expected structure, and
respects its parameters.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    build_workload,
    make_model_factory,
    overhead_report,
    run_attack_sweep,
    run_figure3,
    run_figure4,
    run_gar_ablation,
    run_quorum_ablation,
    run_scaling_study,
    run_table2,
    table1_report,
)
from repro.experiments.figure3 import FIGURE3_SYSTEMS


@pytest.fixture(scope="module")
def tiny_scale():
    """A deliberately tiny scale so every harness finishes in a few seconds."""
    scale = ExperimentScale.small()
    scale.num_steps = 8
    scale.eval_every = 4
    scale.dataset_size = 600
    scale.num_workers = 6
    scale.num_servers = 3
    scale.declared_byzantine_workers = 1
    scale.declared_byzantine_servers = 0
    return scale


class TestScaleAndWorkload:
    def test_small_and_paper_like_presets_valid(self):
        for scale in (ExperimentScale.small(), ExperimentScale.paper_like()):
            assert scale.num_workers >= 3 * scale.declared_byzantine_workers + 3
            assert scale.num_servers >= 3 * scale.declared_byzantine_servers + 3

    def test_build_workload_blobs_and_images(self):
        scale = ExperimentScale.small()
        train, test, in_features, num_classes = build_workload(scale)
        assert len(train) > len(test)
        assert in_features == 8 and num_classes == 4

        scale = dataclasses.replace(scale, dataset="images", dataset_size=80)
        train, test, in_features, num_classes = build_workload(scale)
        assert in_features == 3 * scale.image_size ** 2
        assert num_classes == 10

    def test_unknown_dataset_and_model_raise(self):
        scale = dataclasses.replace(ExperimentScale.small(), dataset="imagenet")
        with pytest.raises(ValueError):
            build_workload(scale)
        scale = dataclasses.replace(ExperimentScale.small(), model="transformer")
        with pytest.raises(ValueError):
            make_model_factory(scale, 8, 4)

    def test_model_factory_is_deterministic(self):
        scale = ExperimentScale.small()
        factory = make_model_factory(scale, 8, 4)
        assert np.allclose(factory().get_flat_parameters(),
                           factory().get_flat_parameters())


class TestTable1:
    def test_report_structure(self):
        report = table1_report()
        assert report["total_parameters"] == pytest.approx(1.75e6, rel=0.02)
        assert len(report["layers"]) == 8


class TestFigure3:
    def test_runs_all_systems(self, tiny_scale):
        result = run_figure3(scale=tiny_scale)
        assert set(result.histories) == set(FIGURE3_SYSTEMS)
        assert all(len(history) == tiny_scale.num_steps
                   for history in result.histories.values())

    def test_subset_of_systems(self, tiny_scale):
        result = run_figure3(scale=tiny_scale, systems=["vanilla_tf"])
        assert list(result.histories) == ["vanilla_tf"]

    def test_batch_size_override_recorded(self, tiny_scale):
        result = run_figure3(scale=tiny_scale, batch_size=8,
                             systems=["vanilla_tf"])
        assert result.batch_size == 8

    def test_summary_rows_have_expected_keys(self, tiny_scale):
        result = run_figure3(scale=tiny_scale, systems=["vanilla_tf",
                                                        "guanyu_vanilla"])
        rows = result.accuracy_summary()
        assert {"system", "final_accuracy", "throughput",
                "time_to_target"} <= set(rows[0])


class TestFigure4AndOverhead:
    def test_figure4_structure(self, tiny_scale):
        result = run_figure4(scale=tiny_scale, num_attacking_workers=1,
                             num_attacking_servers=0)
        assert set(result.histories) == {"vanilla_tf", "vanilla_tf_byzantine",
                                         "guanyu_byzantine"}
        accuracies = result.final_accuracies()
        assert all(0.0 <= value <= 1.0 for value in accuracies.values())

    def test_overhead_report_requires_needed_systems(self, tiny_scale):
        result = run_figure3(scale=tiny_scale, systems=["vanilla_tf"])
        with pytest.raises(ValueError):
            overhead_report(result=result)

    def test_overhead_report_from_scale(self, tiny_scale):
        report = overhead_report(scale=tiny_scale)
        assert report.time_vanilla_tf > 0
        assert report.time_guanyu_byzantine > 0


class TestTable2:
    def test_sampling_interval_and_warmup(self, tiny_scale):
        scale = dataclasses.replace(tiny_scale, num_steps=12,
                                    declared_byzantine_servers=0, num_servers=3)
        samples = run_table2(scale=scale, interval=2, warmup_fraction=0.5)
        assert all(sample.step >= 6 for sample in samples)
        assert len(samples) >= 2


class TestAblations:
    def test_gar_ablation_subset(self, tiny_scale):
        histories = run_gar_ablation(scale=tiny_scale, rules=("median", "mean"))
        assert set(histories) == {"median", "mean"}

    def test_attack_sweep_custom_suite(self, tiny_scale):
        from repro.byzantine import SignFlipAttack
        histories = run_attack_sweep(scale=tiny_scale,
                                     attacks={"sign_flip": {
                                         "worker_attack": SignFlipAttack()}})
        assert list(histories) == ["sign_flip"]

    def test_attack_sweep_forwards_extra_suite_fields(self, tiny_scale):
        from repro.byzantine import SignFlipAttack
        histories = run_attack_sweep(scale=tiny_scale, attacks={
            "sf": {"worker_attack": SignFlipAttack(),
                   "gradient_rule": "median"}})
        assert histories["sf"].config["gradient_rule"] == "median"

    def test_attack_sweep_rejects_name_override(self, tiny_scale):
        from repro.byzantine import SignFlipAttack
        with pytest.raises(ValueError, match="cannot override 'name'"):
            run_attack_sweep(scale=tiny_scale, attacks={
                "sf": {"worker_attack": SignFlipAttack(), "name": "custom"}})

    def test_quorum_ablation_explicit_quorums(self, tiny_scale):
        scale = dataclasses.replace(tiny_scale, num_workers=9,
                                    declared_byzantine_workers=1)
        histories = run_quorum_ablation(scale=scale, quorums=(5, 8))
        assert set(histories) == {5, 8}

    def test_scaling_study_rows(self, tiny_scale):
        rows = run_scaling_study(scale=tiny_scale, worker_counts=(6, 9),
                                 num_steps=4)
        assert [row["num_workers"] for row in rows] == [6, 9]
        assert all(row["throughput"] > 0 for row in rows)
