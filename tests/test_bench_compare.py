"""Unit tests of the CI benchmark-regression gate.

The acceptance bar for the gate is behavioural: it must pass when the
current run matches the baseline and fail on a synthetic 2× slowdown.
"""

import json
from pathlib import Path

import pytest

from repro.benchtools import bench_campaign
from repro.benchtools.compare import compare_benchmarks, load_medians, main


def _bench_json(medians):
    return {"benchmarks": [{"fullname": name,
                            "stats": {"median": value, "mean": value}}
                           for name, value in medians.items()]}


def _write(path, medians):
    path.write_text(json.dumps(_bench_json(medians)))
    return str(path)


BASELINE = {"bench::mean": 0.010, "bench::median": 0.050,
            "bench::multi_krum": 0.080}


class TestComparator:
    def test_identical_runs_pass(self):
        rows, failures = compare_benchmarks(dict(BASELINE), dict(BASELINE))
        assert failures == []
        assert all(row["status"] == "ok" for row in rows)

    def test_two_x_slowdown_fails(self):
        slow = {name: value * 2.0 for name, value in BASELINE.items()}
        rows, failures = compare_benchmarks(slow, dict(BASELINE))
        assert len(failures) == len(BASELINE)
        assert all(row["status"] == "REGRESSED" for row in rows)
        assert "2.00x" in failures[0]

    def test_regression_just_under_threshold_passes(self):
        current = {name: value * 1.29 for name, value in BASELINE.items()}
        _, failures = compare_benchmarks(current, dict(BASELINE),
                                         threshold=1.30)
        assert failures == []

    def test_missing_benchmark_fails(self):
        current = dict(BASELINE)
        current.pop("bench::median")
        rows, failures = compare_benchmarks(current, dict(BASELINE))
        assert any("not in the current run" in failure
                   for failure in failures)
        assert any(row["status"] == "missing" for row in rows)

    def test_new_benchmark_passes_with_note(self):
        current = dict(BASELINE)
        current["bench::brand_new"] = 0.001
        rows, failures = compare_benchmarks(current, dict(BASELINE))
        assert failures == []
        assert any(row["status"] == "new" for row in rows)

    def test_threshold_must_be_a_ratio(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_benchmarks(dict(BASELINE), dict(BASELINE), threshold=0.3)


class TestLoadMedians:
    def test_round_trip(self, tmp_path):
        path = _write(tmp_path / "bench.json", BASELINE)
        assert load_medians(path) == BASELINE

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        with pytest.raises(ValueError, match="no benchmarks"):
            load_medians(str(path))

    def test_benchmark_without_median_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"benchmarks": [{"fullname": "x",
                                                    "stats": {}}]}))
        with pytest.raises(ValueError, match="name/median"):
            load_medians(str(path))


class TestMainExitCodes:
    def test_pass_is_zero(self, tmp_path, capsys):
        current = _write(tmp_path / "current.json", BASELINE)
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        assert main([current, baseline]) == 0
        assert "bench-compare: ok" in capsys.readouterr().out

    def test_synthetic_two_x_slowdown_is_one(self, tmp_path, capsys):
        slow = {name: value * 2.0 for name, value in BASELINE.items()}
        current = _write(tmp_path / "current.json", slow)
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        assert main([current, baseline]) == 1
        assert "regression" in capsys.readouterr().err

    def test_missing_file_is_two(self, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        assert main([str(tmp_path / "nope.json"), baseline]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_baseline_is_two_with_clear_message(self, tmp_path,
                                                        capsys):
        current = _write(tmp_path / "current.json", BASELINE)
        assert main([current, str(tmp_path / "no-baseline.json")]) == 2
        err = capsys.readouterr().err
        assert "baseline" in err
        assert "does not exist" in err
        assert "commit" in err

    def test_unreadable_baseline_is_two_and_names_the_file(self, tmp_path,
                                                           capsys):
        current = _write(tmp_path / "current.json", BASELINE)
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main([current, str(broken)]) == 2
        assert "broken.json" in capsys.readouterr().err

    def test_empty_baseline_medians_fail_instead_of_vacuous_pass(self):
        with pytest.raises(ValueError, match="vacuous"):
            compare_benchmarks(dict(BASELINE), {})

    def test_committed_aggregation_baseline_parses(self):
        baseline = Path(__file__).resolve().parents[1] \
            / "benchmarks" / "baselines" / "BENCH_aggregation.json"
        medians = load_medians(str(baseline))
        assert any("multi_krum" in name for name in medians)
        assert any("geometric_median" in name for name in medians)
        assert all(value > 0 for value in medians.values())


class TestCampaignBenchmark:
    def test_report_shape_and_bit_identity(self, tmp_path):
        report = bench_campaign.run_benchmark(replicas=2, steps=3)
        assert report["bit_identical"] is True
        assert report["replicas"] == 2
        assert report["sequential_seconds"] > 0
        assert report["batched_seconds"] > 0
        assert report["speedup"] == pytest.approx(
            report["sequential_seconds"] / report["batched_seconds"])
        from repro.kernels import active_backend
        assert report["lanes"] == 1
        # None means "whatever is active" — e.g. REPRO_KERNEL_BACKEND in CI.
        assert report["kernel_backend"] == active_backend().name
        assert report["machine"]["cpu_count"] >= 1

    def test_lanes_and_backend_stay_bit_identical(self):
        report = bench_campaign.run_benchmark(replicas=3, steps=3, lanes=2,
                                              kernel_backend="numpy-opt")
        assert report["bit_identical"] is True
        assert report["lanes"] == 2
        assert report["kernel_backend"] == "numpy-opt"

    def test_main_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_campaign.json"
        code = bench_campaign.main(["--replicas", "2", "--steps", "3",
                                    "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "campaign_seed_sweep"
        assert "speedup" in capsys.readouterr().out

    def test_min_speedup_gate(self, tmp_path):
        output = tmp_path / "bench.json"
        code = bench_campaign.main(["--replicas", "2", "--steps", "3",
                                    "--output", str(output),
                                    "--min-speedup", "10000.0"])
        assert code == 1


class TestBenchAdversary:
    def test_run_benchmark_reports_all_variants(self):
        from repro.benchtools import bench_adversary

        report = bench_adversary.run_benchmark(steps=3)
        variants = report["variants"]
        assert set(variants) == {"honest", "legacy_little_is_enough",
                                 "adversary_collusion",
                                 "adversary_omniscient"}
        for row in variants.values():
            assert row["seconds"] > 0
            assert row["seconds_per_round"] == pytest.approx(
                row["seconds"] / 3)
        assert "engine_overhead_per_round" in report

    def test_main_writes_report_and_gates(self, tmp_path, capsys):
        from repro.benchtools import bench_adversary

        output = tmp_path / "BENCH_adversary.json"
        code = bench_adversary.main(["--steps", "3",
                                     "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "adversary_overhead"
        assert "ms/round" in capsys.readouterr().out
        # an absurdly strict gate must fail
        code = bench_adversary.main(["--steps", "3",
                                     "--output", str(output),
                                     "--max-slowdown", "0.0001"])
        assert code == 1


class TestReportFormatAdapters:
    """All three committed bench artifacts must feed one comparator."""

    CAMPAIGN = {"benchmark": "campaign_seed_sweep",
                "batched_seconds_per_replica": 0.03,
                "sequential_seconds_per_replica": 0.2,
                "speedup": 6.7}
    ADVERSARY = {"benchmark": "adversary_overhead",
                 "variants": {"honest": {"seconds_per_round": 0.004},
                              "adversary_omniscient":
                                  {"seconds_per_round": 0.006}}}

    def test_campaign_report_adapts_to_per_replica_medians(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(self.CAMPAIGN))
        medians = load_medians(str(path))
        assert medians == {
            "campaign_seed_sweep/batched_seconds_per_replica": 0.03,
            "campaign_seed_sweep/sequential_seconds_per_replica": 0.2}

    def test_adversary_report_adapts_to_per_round_medians(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(self.ADVERSARY))
        medians = load_medians(str(path))
        assert medians["adversary_overhead/honest"] == 0.004
        assert medians["adversary_overhead/adversary_omniscient"] == 0.006

    def test_synthetic_campaign_regression_fails_gate(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self.CAMPAIGN))
        slow = dict(self.CAMPAIGN,
                    batched_seconds_per_replica=0.03 * 2.0)
        current = tmp_path / "current.json"
        current.write_text(json.dumps(slow))
        assert main([str(current), str(baseline),
                     "--threshold", "1.60"]) == 1
        assert main([str(baseline), str(baseline),
                     "--threshold", "1.60"]) == 0

    def test_truncated_reports_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"benchmark": "campaign_seed_sweep"}))
        with pytest.raises(ValueError, match="lacks"):
            load_medians(str(path))
        path.write_text(json.dumps({"benchmark": "adversary_overhead",
                                    "variants": {}}))
        with pytest.raises(ValueError, match="variants"):
            load_medians(str(path))

    @pytest.mark.parametrize("name", ["BENCH_campaign.json",
                                      "BENCH_adversary.json"])
    def test_committed_baselines_parse(self, name):
        baseline = Path(__file__).resolve().parents[1] \
            / "benchmarks" / "baselines" / name
        medians = load_medians(str(baseline))
        assert medians
        assert all(value > 0 for value in medians.values())


class TestTraceAnnotation:
    """--trace dominant-phase decoration of regression messages."""

    def _jsonl(self, path, records):
        path.write_text("\n".join(json.dumps(record) for record in records)
                        + "\n")
        return str(path)

    def test_summary_json_is_loaded_directly(self, tmp_path):
        from repro.benchtools.compare import dominant_phase, load_trace_summary

        path = tmp_path / "summary.json"
        path.write_text(json.dumps(
            {"spans": {"seq.step.compute": {"count": 4, "total_s": 3.0},
                       "seq.step.apply": {"count": 4, "total_s": 1.0}}}))
        summary = load_trace_summary(str(path))
        assert dominant_phase(summary) == \
            "seq.step.compute (75% of traced time)"

    def test_raw_jsonl_spans_are_aggregated(self, tmp_path):
        from repro.benchtools.compare import dominant_phase, load_trace_summary

        path = self._jsonl(tmp_path / "trace.jsonl", [
            {"name": "a", "kind": "span", "ts": 0.0, "dur": 1.0},
            {"name": "a", "kind": "span", "ts": 1.0, "dur": 1.0},
            {"name": "b", "kind": "span", "ts": 2.0, "dur": 0.5},
        ])
        summary = load_trace_summary(path)
        assert summary["spans"]["a"] == {"count": 2, "total_s": 2.0}
        assert "(80% of traced time)" in dominant_phase(summary)

    def test_embedded_campaign_summaries_are_folded(self, tmp_path):
        """Pool-run sweep traces carry summaries inside campaign events."""
        from repro.benchtools.compare import dominant_phase, load_trace_summary

        path = self._jsonl(tmp_path / "pool.jsonl", [
            {"name": "campaign.scenario", "kind": "event", "ts": 0.0,
             "attrs": {"scenario": "s0", "trace_summary": {
                 "spans": {"seq.step.compute": {"count": 3, "total_s": 2.0}}}}},
            {"name": "campaign.scenario", "kind": "event", "ts": 1.0,
             "attrs": {"scenario": "s1", "trace_summary": {
                 "spans": {"seq.step.compute": {"count": 3, "total_s": 1.0},
                           "seq.step.apply": {"count": 3, "total_s": 0.5}}}}},
        ])
        summary = load_trace_summary(path)
        assert summary["spans"]["seq.step.compute"] == \
            {"count": 6, "total_s": 3.0}

    def test_unusable_trace_is_best_effort_none(self, tmp_path):
        from repro.benchtools.compare import dominant_phase, load_trace_summary

        assert load_trace_summary(str(tmp_path / "missing.jsonl")) is None
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        assert load_trace_summary(str(bad)) is None
        assert dominant_phase(None) is None
        assert dominant_phase({"spans": {}}) is None

    def test_main_annotates_regressions(self, tmp_path, capsys):
        current = _write(tmp_path / "current.json", {"bench": 2.0})
        baseline = _write(tmp_path / "baseline.json", {"bench": 1.0})
        trace = self._jsonl(tmp_path / "trace.jsonl", [
            {"name": "seq.step.compute", "kind": "span", "ts": 0.0,
             "dur": 1.0}])
        assert main([current, baseline, "--trace", trace]) == 1
        err = capsys.readouterr().err
        assert "[dominant phase: seq.step.compute (100% of traced time)]" \
            in err

    def test_multi_source_cluster_trace_not_double_counted(self, tmp_path):
        from repro.benchtools.compare import load_trace_summary

        # merged cluster traces carry a node's raw spans AND its summary
        # event under the same `source`: count the raw spans only
        path = self._jsonl(tmp_path / "cluster.jsonl", [
            {"name": "clu.worker.compute", "kind": "span", "ts": 0.0,
             "dur": 1.0, "source": "worker/0"},
            {"name": "cluster.node", "kind": "event", "ts": 1.0,
             "source": "worker/0", "attrs": {"trace_summary": {
                 "spans": {"clu.worker.compute":
                           {"count": 1, "total_s": 1.0}}}}},
            # an unseen source's summary still folds (its raw spans were
            # dropped before reaching the merged file)
            {"name": "cluster.node", "kind": "event", "ts": 1.0,
             "source": "worker/9", "attrs": {"trace_summary": {
                 "spans": {"clu.worker.compute":
                           {"count": 2, "total_s": 2.0}}}}},
        ])
        summary = load_trace_summary(path)
        assert summary["spans"]["clu.worker.compute"] == \
            {"count": 3, "total_s": 3.0}
