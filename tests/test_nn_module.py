"""Unit tests for Module, Parameter and the flat-vector interface."""

import numpy as np
import pytest

from repro.nn import Dense, MLP, ReLU, Sequential
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class TinyModule(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 3)))
        self.inner = Dense(3, 2, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.inner(x @ self.weight)


class TestParameterRegistration:
    def test_parameters_discovered_recursively(self):
        module = TinyModule()
        names = [name for name, _ in module.named_parameters()]
        assert names == ["weight", "inner.weight", "inner.bias"]

    def test_num_parameters(self):
        module = TinyModule()
        assert module.num_parameters() == 6 + 3 * 2 + 2

    def test_zero_grad_clears_all(self):
        module = TinyModule()
        out = module(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in module.parameters())
        module.zero_grad()
        assert all(p.grad is None for p in module.parameters())

    def test_train_eval_propagates(self):
        model = Sequential(Dense(2, 2), ReLU())
        model.eval()
        assert not model.training
        assert not model[0].training
        model.train()
        assert model[0].training


class TestFlatVectorInterface:
    def test_flat_roundtrip(self):
        module = TinyModule()
        flat = module.get_flat_parameters()
        module.set_flat_parameters(flat * 2.0)
        assert np.allclose(module.get_flat_parameters(), flat * 2.0)

    def test_flat_length_matches_num_parameters(self):
        module = TinyModule()
        assert module.get_flat_parameters().size == module.num_parameters()

    def test_set_flat_wrong_size_raises(self):
        module = TinyModule()
        with pytest.raises(ValueError):
            module.set_flat_parameters(np.zeros(3))

    def test_flat_gradient_zero_when_no_backward(self):
        module = TinyModule()
        assert np.allclose(module.get_flat_gradient(), 0.0)

    def test_flat_gradient_after_backward_matches_parameters(self):
        module = TinyModule()
        module(Tensor(np.ones((4, 2)))).sum().backward()
        flat_grad = module.get_flat_gradient()
        assert flat_grad.size == module.num_parameters()
        assert np.any(flat_grad != 0.0)

    def test_apply_flat_gradient_is_sgd_step(self):
        module = TinyModule()
        before = module.get_flat_parameters()
        gradient = np.ones_like(before)
        module.apply_flat_gradient(gradient, learning_rate=0.1)
        assert np.allclose(module.get_flat_parameters(), before - 0.1)

    def test_two_models_same_seed_identical_flat_parameters(self):
        a = MLP(4, (8,), 3, seed=5)
        b = MLP(4, (8,), 3, seed=5)
        assert np.allclose(a.get_flat_parameters(), b.get_flat_parameters())

    def test_two_models_different_seed_differ(self):
        a = MLP(4, (8,), 3, seed=5)
        b = MLP(4, (8,), 3, seed=6)
        assert not np.allclose(a.get_flat_parameters(), b.get_flat_parameters())


class TestStateDict:
    def test_state_dict_roundtrip(self):
        a = TinyModule()
        b = TinyModule()
        b.set_flat_parameters(b.get_flat_parameters() + 1.0)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.get_flat_parameters(), b.get_flat_parameters())

    def test_state_dict_returns_copies(self):
        module = TinyModule()
        state = module.state_dict()
        state["weight"][...] = 42.0
        assert not np.allclose(module.get_flat_parameters(), 42.0)

    def test_load_state_dict_missing_key_raises(self):
        module = TinyModule()
        state = module.state_dict()
        del state["weight"]
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self):
        module = TinyModule()
        state = module.state_dict()
        state["weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            module.load_state_dict(state)


class TestSequential:
    def test_forward_composes_in_order(self):
        model = Sequential(Dense(2, 4, rng=np.random.default_rng(0)), ReLU(),
                           Dense(4, 3, rng=np.random.default_rng(1)))
        out = model(Tensor(np.ones((5, 2))))
        assert out.shape == (5, 3)

    def test_len_iter_getitem(self):
        layers = [Dense(2, 2), ReLU()]
        model = Sequential(*layers)
        assert len(model) == 2
        assert list(model) == layers
        assert model[1] is layers[1]
