"""Kernel-backend suite: registry semantics and strict bitwise parity.

The backend contract is bit-identity, not approximate equality: every
registered backend must produce IEEE-754-identical outputs to the
``reference`` backend on every hot kernel, and every registered GAR's
batched path must produce identical aggregates under every backend.
``numpy.testing`` helpers are deliberately avoided — the assertions
compare raw bytes via ``==`` on full arrays.
"""

import os

import numpy as np
import pytest

from repro.aggregation import available_rules, get_rule
from repro.campaign.spec import ScenarioSpec
from repro.kernels import (
    DEFAULT_BACKEND,
    ENV_VAR,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.kernels.registry import _FACTORIES, _INSTANCES
from repro.nn.models import MLP, SoftmaxRegression


def _identical(left, right) -> bool:
    left = np.asarray(left)
    right = np.asarray(right)
    return left.shape == right.shape and bool(np.all(left == right))


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_reference_and_numpy_opt_are_registered(self):
        assert "reference" in available_backends()
        assert "numpy-opt" in available_backends()
        assert DEFAULT_BACKEND == "reference"

    def test_unknown_backend_raises_with_available_list(self):
        with pytest.raises(ValueError, match="numpy-opt"):
            get_backend("not-a-backend")

    def test_backends_are_singletons(self):
        assert get_backend("reference") is get_backend("reference")
        assert get_backend("numpy-opt") is get_backend("numpy-opt")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy-opt")
        assert get_backend().name == "numpy-opt"
        monkeypatch.delenv(ENV_VAR)
        assert get_backend().name == DEFAULT_BACKEND

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        set_backend("numpy-opt")
        try:
            assert get_backend().name == "numpy-opt"
        finally:
            set_backend(None)
        assert get_backend().name == "reference"

    def test_use_backend_restores_on_exit(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert get_backend().name == DEFAULT_BACKEND
        with use_backend("numpy-opt") as backend:
            assert backend.name == "numpy-opt"
            assert get_backend().name == "numpy-opt"
        assert get_backend().name == DEFAULT_BACKEND

    def test_use_backend_none_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with use_backend(None) as backend:
            assert backend.name == DEFAULT_BACKEND

    def test_use_backend_rejects_unknown_before_switching(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(ValueError):
            with use_backend("bogus"):
                pass  # pragma: no cover - must not be reached
        assert get_backend().name == DEFAULT_BACKEND

    def test_register_backend_round_trip(self):
        class _Probe(KernelBackend):
            name = "probe"

        register_backend("probe", _Probe)
        try:
            assert "probe" in available_backends()
            assert isinstance(get_backend("probe"), _Probe)
        finally:
            _FACTORIES.pop("probe", None)
            _INSTANCES.pop("probe", None)


# --------------------------------------------------------------------------- #
# Aggregation parity: every registered GAR, every backend, bitwise
# --------------------------------------------------------------------------- #
def _gradient_stacks(rng, num_inputs, dimension=9, replicas=4):
    single = rng.standard_normal((num_inputs, dimension))
    batched = rng.standard_normal((replicas, num_inputs, dimension))
    return single, batched


class TestAggregationParity:
    @pytest.mark.parametrize("rule_name", sorted(available_rules()))
    @pytest.mark.parametrize("backend_name",
                             [name for name in available_backends()
                              if name != "reference"])
    def test_batched_path_matches_reference_bitwise(self, rule_name,
                                                    backend_name):
        rng = np.random.default_rng(7)
        for num_byzantine in (0, 1, 2):
            rule = get_rule(rule_name, num_byzantine=num_byzantine)
            num_inputs = max(rule.minimum_inputs(), 2 * num_byzantine + 3)
            for trial in range(5):
                single, batched = _gradient_stacks(rng, num_inputs)
                with use_backend("reference"):
                    want_single = rule.aggregate(
                        [row.copy() for row in single]).copy()
                    want_batched = rule.aggregate_batched(
                        batched.copy()).copy()
                with use_backend(backend_name):
                    got_single = rule.aggregate(
                        [row.copy() for row in single]).copy()
                    got_batched = rule.aggregate_batched(
                        batched.copy()).copy()
                assert _identical(want_single, got_single), \
                    f"{rule_name}/f={num_byzantine}: sequential aggregate " \
                    f"differs under backend '{backend_name}'"
                assert _identical(want_batched, got_batched), \
                    f"{rule_name}/f={num_byzantine}: batched aggregate " \
                    f"differs under backend '{backend_name}'"


# --------------------------------------------------------------------------- #
# Dense-kernel parity: batched forward/backward, bitwise
# --------------------------------------------------------------------------- #
class TestDenseParity:
    @pytest.mark.parametrize("backend_name",
                             [name for name in available_backends()
                              if name != "reference"])
    @pytest.mark.parametrize("template", ["softmax", "mlp"])
    def test_forward_backward_matches_reference_bitwise(self, backend_name,
                                                        template):
        from repro.batch.models import BatchedDenseStack

        if template == "softmax":
            module = SoftmaxRegression(in_features=6, num_classes=4, seed=0)
        else:
            module = MLP(in_features=6, hidden=[8], num_classes=4, seed=0)
        stack = BatchedDenseStack(module)
        rng = np.random.default_rng(11)
        replicas, batch = 3, 5
        flat = rng.standard_normal((replicas, stack.num_parameters))
        features = rng.standard_normal((replicas, batch, 6))
        labels = rng.integers(0, 4, size=(replicas, batch))

        with use_backend("reference"):
            want_logits = stack.forward_logits(flat.copy(),
                                               features.copy()).copy()
            want_losses, want_grads = stack.forward_backward(
                flat.copy(), features.copy(), labels.copy())
            want_losses, want_grads = want_losses.copy(), want_grads.copy()
        with use_backend(backend_name):
            got_logits = stack.forward_logits(flat.copy(),
                                              features.copy()).copy()
            got_losses, got_grads = stack.forward_backward(
                flat.copy(), features.copy(), labels.copy())
            got_losses, got_grads = got_losses.copy(), got_grads.copy()

        assert _identical(want_logits, got_logits)
        assert _identical(want_losses, got_losses)
        assert _identical(want_grads, got_grads)


# --------------------------------------------------------------------------- #
# End-to-end: full scenario histories identical under every backend
# --------------------------------------------------------------------------- #
class TestScenarioParity:
    @pytest.mark.parametrize("backend_name",
                             [name for name in available_backends()
                              if name != "reference"])
    def test_full_history_identical_across_backends(self, backend_name):
        from repro.runtime import run

        spec = ScenarioSpec(name="parity", num_steps=6, eval_every=3,
                            worker_attack={"name": "sign_flip"})
        with use_backend("reference"):
            want = run(spec.replace()).history.to_dict()
        with use_backend(backend_name):
            got = run(spec.replace()).history.to_dict()
        assert want == got



# --------------------------------------------------------------------------- #
# Spec integration: the kernels field hashes absent ≡ legacy
# --------------------------------------------------------------------------- #
class TestSpecKernelsField:
    # Literal pins: the content addresses of kernels-less specs must never
    # change — stores filled before the kernel engine existed stay valid.
    PINNED_DEFAULT = \
        "f4f9a6fcf4cd36fd58a1805cc69feaab65fc495faa2537e8ed7daaca0ca9aa09"
    PINNED_DEFAULT_GROUP = \
        "830df4188ce84283658fe8d4713e7796d7d9a79076f95a1ef94250eaa529c9bc"
    PINNED_SIGN_FLIP = \
        "1ff6371daf74334121a95fe81f20ca536cbf2f29b24850eda7c187d6d4014ff5"

    def test_absent_kernels_keeps_pinned_hashes(self):
        assert ScenarioSpec().spec_hash() == self.PINNED_DEFAULT
        assert ScenarioSpec().batch_group_hash() == self.PINNED_DEFAULT_GROUP
        attacked = ScenarioSpec(worker_attack={"name": "sign_flip"})
        assert attacked.spec_hash() == self.PINNED_SIGN_FLIP

    def test_kernels_field_changes_the_hash_when_present(self):
        base = ScenarioSpec()
        pinned = base.replace(kernels="numpy-opt")
        assert pinned.spec_hash() != base.spec_hash()
        assert pinned.batch_group_hash() != base.batch_group_hash()

    def test_kernels_round_trips_through_json(self):
        spec = ScenarioSpec(kernels="numpy-opt")
        assert ScenarioSpec.from_json(spec.to_json()).kernels == "numpy-opt"

    def test_unknown_kernels_rejected(self):
        with pytest.raises(ValueError, match="kernel backend"):
            ScenarioSpec(kernels="bogus").validate()

    def test_kernels_with_cluster_runtime_rejected(self):
        spec = ScenarioSpec(trainer="guanyu_threaded", runtime="cluster",
                            kernels="numpy-opt")
        with pytest.raises(ValueError, match=ENV_VAR):
            spec.validate()
