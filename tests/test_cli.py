"""Tests for the command-line interface."""

import json

import pytest

from repro import cli


def _run(capsys, argv):
    exit_code = cli.main(argv)
    captured = capsys.readouterr()
    return exit_code, captured.out


BASE_ARGS = ["--steps", "6", "--workers-count", "6", "--servers-count", "3"]


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = cli.build_parser().parse_args(["figure3"])
        assert args.batch_size == 128
        assert args.preset == "small"

    def test_version_flag(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_invalid_arguments_exit_2(self, capsys):
        # semantic validation errors (not argparse parse errors) must exit 2
        code = cli.main(["--steps", "4", "--workers-count", "6",
                         "--servers-count", "3", "scaling", "--workers", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSubcommands:
    def test_table1(self, capsys):
        code, out = _run(capsys, ["table1"])
        assert code == 0
        assert "1,756,426" in out

    def test_table1_json_output(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        code, _ = _run(capsys, ["--json", str(path), "table1"])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["total_parameters"] == 1756426

    def test_figure3(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["figure3", "--batch-size", "16"])
        assert code == 0
        assert "vanilla_tf" in out
        assert "top-1 accuracy" in out  # the ASCII chart was rendered

    def test_figure4(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["figure4"])
        assert code == 0
        assert "guanyu_byzantine" in out

    def test_table2(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["table2", "--interval", "2"])
        assert code == 0
        assert "cos_phi" in out

    def test_overhead(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["overhead"])
        assert code == 0
        assert "runtime_overhead_percent" in out

    def test_scaling_with_custom_worker_counts(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["scaling", "--workers", "6", "9"])
        assert code == 0
        assert "num_workers" in out

    def test_quorums(self, capsys):
        code, out = _run(capsys, ["--steps", "4", "--workers-count", "9",
                                  "--servers-count", "3", "quorums"])
        assert code == 0
        assert "q=" in out

    def test_gars(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["gars"])
        assert code == 0
        assert "multi_krum" in out

    def test_json_dump_for_histories(self, capsys, tmp_path):
        path = tmp_path / "fig4.json"
        code, _ = _run(capsys, BASE_ARGS + ["--json", str(path), "figure4"])
        assert code == 0
        payload = json.loads(path.read_text())
        assert "vanilla_tf_byzantine" in payload

    def test_list_prints_registries(self, capsys):
        code, out = _run(capsys, ["list"])
        assert code == 0
        assert "multi_krum" in out
        assert "random_gradient" in out
        assert "equivocation" in out
        assert "guanyu_threaded" in out
        assert "lognormal" in out
        assert "omniscient_descent" in out  # adversary registry included


class TestAttacksListing:
    def test_lists_attacks_and_adversaries_with_kind_and_params(self, capsys):
        code, out = _run(capsys, ["attacks"])
        assert code == 0
        # every registered attack appears with its kind tag
        from repro.byzantine import available_attacks
        for name in available_attacks():
            assert name in out
        assert "[worker-attack" in out and "[server-attack" in out
        # native adversaries appear with their constructor parameters
        from repro.adversary import available_adversaries
        for name in available_adversaries():
            assert name in out
        assert "[adversary" in out
        assert "z_factor=1.5" in out          # attack parameters rendered
        assert "wake_step=20" in out          # adversary parameters rendered

    def test_json_dump(self, capsys, tmp_path):
        path = tmp_path / "attacks.json"
        code, _ = _run(capsys, ["--json", str(path), "attacks"])
        assert code == 0
        rows = json.loads(path.read_text())
        kinds = {row["name"]: row["kind"] for row in rows}
        assert kinds["sign_flip"] == "worker-attack"
        assert kinds["stale_model"] == "server-attack"
        assert kinds["collusion"] == "adversary"

    def test_rejects_extra_arguments(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["attacks", "--bogus"])
        assert excinfo.value.code == 2

    def test_attack_sweep_still_runs_the_ablation(self, capsys):
        code, out = _run(capsys, ["--steps", "4", "--workers-count", "9",
                                  "--servers-count", "6", "attack-sweep"])
        assert code == 0
        assert "Attack sweep" in out
        assert "sign_flip" in out


class TestSweep:
    SWEEP_ARGS = ["--steps", "4"] + BASE_ARGS[2:] + [
        "sweep", "--gars", "multi_krum", "median",
        "--attacks", "random_gradient", "sign_flip",
        "--seeds", "0", "1"]

    def test_grid_sweep_runs_persists_and_caches(self, capsys, tmp_path):
        argv = self.SWEEP_ARGS + ["--store", str(tmp_path / "store"),
                                  "--processes", "2"]
        code, out = _run(capsys, argv)
        assert code == 0
        # 2 GARs × 2 attacks × 2 seeds = 8 scenarios, all trained.
        assert "8 scenarios — ran 8, cached 0, failed 0" in out
        assert "gradient_rule=median-sign_flip-seed=1" in out

        # Second invocation: 100 % cache hits, no re-training.
        code, out = _run(capsys, argv)
        assert code == 0
        assert "8 scenarios — ran 0, cached 8, failed 0" in out

    def test_batch_seeds_sweep_matches_sequential_store(self, capsys,
                                                        tmp_path):
        """--batch-seeds runs the seed axis on the batched runtime and
        fills the store with the same content addresses a sequential sweep
        would (bit-identical histories, so resume works across modes)."""
        base = ["--steps", "4"] + BASE_ARGS[2:] + [
            "sweep", "--gars", "multi_krum", "--seeds", "0", "1", "2",
            "--processes", "1"]
        batched_store = tmp_path / "batched"
        code, out = _run(capsys, base + ["--batch-seeds", "--store",
                                         str(batched_store)])
        assert code == 0
        assert "ran 3 (3 batched), cached 0, failed 0" in out

        sequential_store = tmp_path / "sequential"
        code, _ = _run(capsys, base + ["--store", str(sequential_store)])
        assert code == 0
        batched_keys = sorted(p.name for p in batched_store.glob("??/*.json"))
        sequential_keys = sorted(p.name
                                 for p in sequential_store.glob("??/*.json"))
        assert batched_keys == sequential_keys

        # A batched store resumes a sequential sweep (and vice versa).
        code, out = _run(capsys, base + ["--store", str(batched_store)])
        assert code == 0
        assert "ran 0, cached 3, failed 0" in out

    def test_batch_seeds_failure_still_exits_nonzero(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, ScenarioSpec
        campaign = CampaignSpec(
            name="failing-batched",
            base=ScenarioSpec(num_steps=4, dataset_size=300,
                              worker_attack={"name": "label_flip",
                                             "kwargs": {"num_classes": 10}}),
            grid={"seed": [0, 1]})
        path = tmp_path / "campaign.json"
        path.write_text(campaign.to_json())
        code, out = _run(capsys, ["--crash-dir", str(tmp_path),
                                  "sweep", "--spec", str(path),
                                  "--batch-seeds", "--processes", "1"])
        assert code == 1
        assert "failed 2" in out
        # the flight recorder honoured --crash-dir instead of the CWD
        assert (tmp_path / "failing-batched.crash.json").is_file()

    def test_sweep_without_store_does_not_cache(self, capsys):
        argv = ["--steps", "4"] + BASE_ARGS[2:] + [
            "sweep", "--gars", "median", "--processes", "1"]
        code, out = _run(capsys, argv)
        assert code == 0
        assert "1 scenarios — ran 1" in out

    def test_sweep_from_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, ScenarioSpec
        campaign = CampaignSpec(
            name="from-file",
            base=ScenarioSpec(num_workers=6, num_servers=3,
                              declared_byzantine_workers=1,
                              declared_byzantine_servers=0, num_steps=4,
                              eval_every=2, dataset_size=300),
            grid={"seed": [0, 1]})
        path = tmp_path / "campaign.json"
        path.write_text(campaign.to_json())
        code, out = _run(capsys, ["sweep", "--spec", str(path),
                                  "--processes", "1"])
        assert code == 0
        assert "campaign 'from-file': 2 scenarios — ran 2" in out

    def test_sweep_unusable_store_path_exits_cleanly(self, capsys):
        argv = ["--steps", "4"] + BASE_ARGS[2:] + [
            "sweep", "--gars", "median", "--store", "/dev/null/store"]
        code, _ = _run(capsys, argv)
        assert code == 2

    def test_sweep_with_fault_schedule_file(self, capsys, tmp_path):
        faults = {"events": [
            {"step": 1, "kind": "crash", "nodes": ["ps/2"]},
            {"step": 3, "kind": "recover", "nodes": ["ps/2"]},
        ]}
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(faults))
        argv = ["--steps", "4"] + BASE_ARGS[2:] + [
            "sweep", "--gars", "multi_krum", "--faults", str(path),
            "--processes", "1"]
        code, out = _run(capsys, argv)
        assert code == 0
        assert "1 scenarios — ran 1" in out

    def test_sweep_missing_faults_file_exits_2(self, capsys):
        argv = ["--steps", "4"] + BASE_ARGS[2:] + [
            "sweep", "--gars", "median", "--faults", "/does/not/exist.json"]
        code, _ = _run(capsys, argv)
        assert code == 2

    def test_sweep_rejects_spec_plus_faults(self, capsys, tmp_path):
        """--faults must not be silently ignored when --spec is given."""
        from repro.campaign import CampaignSpec
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(CampaignSpec(name="c").to_json())
        faults_path = tmp_path / "faults.json"
        faults_path.write_text(json.dumps({"events": []}))
        code = cli.main(["sweep", "--spec", str(spec_path),
                         "--faults", str(faults_path)])
        assert code == 2
        assert "--faults" in capsys.readouterr().err

    def test_sweep_reports_failures_with_nonzero_exit(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, ScenarioSpec
        campaign = CampaignSpec(
            name="failing",
            scenarios=[ScenarioSpec(
                name="bad", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=4, dataset_size=300,
                worker_attack={"name": "label_flip",
                               "kwargs": {"num_classes": 10}})])
        path = tmp_path / "campaign.json"
        path.write_text(campaign.to_json())
        code, out = _run(capsys, ["--crash-dir", str(tmp_path),
                                  "sweep", "--spec", str(path),
                                  "--processes", "1"])
        assert code == 1
        assert "FAILED bad" in out
        assert (tmp_path / "failing.crash.json").is_file()

    def test_adversary_axis_sweep(self, capsys, tmp_path):
        argv = ["--steps", "4", "--workers-count", "9",
                "--servers-count", "6", "sweep",
                "--adversaries", "collusion", "sign_flip",
                "--seeds", "0", "1", "--processes", "1",
                "--store", str(tmp_path / "store")]
        code, out = _run(capsys, argv)
        assert code == 0
        assert "4 scenarios — ran 4, cached 0, failed 0" in out
        assert "collusion-seed=0" in out and "sign_flip-seed=1" in out
        # resume: same sweep is a pure cache hit
        code, out = _run(capsys, argv)
        assert code == 0
        assert "ran 0, cached 4, failed 0" in out

    def test_adversary_axis_composes_with_batch_seeds(self, capsys):
        code, out = _run(capsys, ["--steps", "4", "--workers-count", "9",
                                  "--servers-count", "6", "sweep",
                                  "--adversaries", "collusion",
                                  "--seeds", "0", "1", "--batch-seeds",
                                  "--processes", "1"])
        assert code == 0
        assert "ran 2 (2 batched)" in out

    def test_label_flip_adversary_axis_gets_workload_classes(self, capsys):
        # Mirrors the --attacks axis fix-up: the blobs workload has 4
        # classes, so the default num_classes=10 would poison labels past
        # the softmax range and crash the scenario.
        code, out = _run(capsys, ["--steps", "4", "--workers-count", "9",
                                  "--servers-count", "6", "sweep",
                                  "--adversaries", "label_flip",
                                  "--processes", "1"])
        assert code == 0
        assert "ran 1, cached 0, failed 0" in out

    def test_unknown_adversary_exits_2(self, capsys):
        code = cli.main(["sweep", "--adversaries", "teleport"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_attacks_and_adversaries_axes_cannot_be_combined(self, capsys):
        # An adversary cell overrides the attack cell's fields, so the two
        # axes would collapse into duplicate content addresses — reject.
        code = cli.main(["sweep", "--attacks", "sign_flip",
                         "--adversaries", "collusion"])
        assert code == 2
        assert "--adversaries" in capsys.readouterr().err


class TestResilience:
    RES_ARGS = ["--steps", "9", "--workers-count", "6", "--servers-count", "6"]

    def test_crash_mode_prints_boundary_table(self, capsys, tmp_path):
        argv = self.RES_ARGS + ["resilience", "--mode", "crash",
                                "--crashes", "0", "2", "--quorums", "3", "5",
                                "--crash-step", "3", "--recover-step", "6",
                                "--store", str(tmp_path / "store")]
        code, out = _run(capsys, argv)
        assert code == 0
        assert "model_quorum" in out and "stalled_steps" in out
        assert "result store:" in out

    def test_partition_mode_prints_recovery_rows(self, capsys):
        argv = self.RES_ARGS + ["resilience", "--mode", "partition",
                                "--partition-step", "2",
                                "--heal-steps", "5", "8"]
        code, out = _run(capsys, argv)
        assert code == 0
        assert "spread_before_heal" in out

    def test_json_dump(self, capsys, tmp_path):
        path = tmp_path / "res.json"
        argv = self.RES_ARGS + ["--json", str(path), "resilience",
                                "--mode", "crash", "--crashes", "0",
                                "--quorums", "3"]
        code, _ = _run(capsys, argv)
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["rows"][0]["model_quorum"] == 3

    def test_invalid_heal_steps_exit_2(self, capsys):
        argv = self.RES_ARGS + ["resilience", "--mode", "partition",
                                "--partition-step", "5",
                                "--heal-steps", "4"]
        code, _ = _run(capsys, argv)
        assert code == 2


class TestObservability:
    """Global --trace/--log-level flags and the trace/report subcommands."""

    def test_trace_flag_writes_jsonl(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        argv = ["--trace", str(trace_path), "--steps", "3",
                "--workers-count", "6", "--servers-count", "3", "figure4"]
        code = cli.main(argv)
        captured = capsys.readouterr()
        assert code == 0
        assert "trace record(s)" in captured.err
        from repro.obs import read_jsonl

        records = read_jsonl(str(trace_path))
        assert records, "traced run must produce records"
        kinds = {record.kind for record in records}
        assert "span" in kinds
        # --trace enables decision records.
        assert any(record.name == "seq.gar.decision" for record in records)

    def test_trace_and_report_subcommands_render(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        code = cli.main(["--trace", str(trace_path), "--steps", "3",
                         "--workers-count", "6", "--servers-count", "3",
                         "figure4"])
        capsys.readouterr()
        assert code == 0

        code, out = _run(capsys, ["trace", str(trace_path)])
        assert code == 0
        assert "span(s)" in out
        assert "seq.step.compute" in out

        code, out = _run(capsys, ["report", str(trace_path)])
        assert code == 0
        assert "Phase breakdown" in out
        assert "Span timeline" in out
        assert "seq.step.aggregate" in out

    def test_trace_subcommand_missing_file_exits_2(self, capsys):
        code, _ = _run(capsys, ["trace", "/nonexistent/trace.jsonl"])
        assert code == 2

    def test_sweep_trace_carries_campaign_counters(self, capsys, tmp_path):
        trace_path = tmp_path / "sweep.jsonl"
        argv = ["--trace", str(trace_path), "--steps", "3",
                "--workers-count", "6", "--servers-count", "3",
                "sweep", "--gars", "median", "--seeds", "0", "1",
                "--processes", "1"]
        code = cli.main(argv)
        capsys.readouterr()
        assert code == 0
        from repro.obs import read_jsonl

        records = read_jsonl(str(trace_path))
        counters = {record.name for record in records
                    if record.kind == "counter"}
        assert "campaign.cache_miss" in counters
        events = [record for record in records
                  if record.name == "campaign.scenario"]
        assert len(events) == 2

    def test_sweep_progress_lines_include_elapsed_time(self, capsys):
        argv = ["--steps", "3", "--workers-count", "6",
                "--servers-count", "3", "sweep", "--gars", "median",
                "--seeds", "0", "--processes", "1"]
        code, out = _run(capsys, argv)
        assert code == 0
        assert "[1/1] ran" in out
        assert "[+" in out  # per-scenario elapsed suffix

    def test_log_level_flag_configures_repro_logger(self, capsys):
        import logging

        code, _ = _run(capsys, ["--log-level", "debug", "table1"])
        assert code == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        code, _ = _run(capsys, ["--log-level", "warning", "table1"])
        assert code == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_unknown_log_level_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["--log-level", "loud", "table1"])


class TestStoreSubcommand:
    """``repro store fsck`` / ``repro store gc`` against a real store."""

    def _seed_store(self, root, *, failed=False):
        from repro.campaign import ResultStore, ScenarioSpec
        from repro.obs import StepRecord, TrainingHistory

        store = ResultStore(root)
        history = TrainingHistory(label="t")
        history.add(StepRecord(step=1, simulated_time=1.0,
                               test_accuracy=0.5))
        keys = []
        for seed in (1, 2):
            spec = ScenarioSpec(name=f"s{seed}", num_workers=6,
                                num_servers=3,
                                declared_byzantine_workers=1,
                                declared_byzantine_servers=0, seed=seed)
            keys.append(store.put(
                spec, history,
                status="failed" if failed and seed == 2 else "ran"))
        return store, keys

    def test_fsck_ok_on_healthy_store(self, capsys, tmp_path):
        self._seed_store(tmp_path / "store")
        code, out = _run(capsys, ["store", "fsck",
                                  str(tmp_path / "store")])
        assert code == 0
        assert "ok: entries, index and telemetry agree" in out

    def test_fsck_reports_corruption_and_exits_1(self, capsys, tmp_path):
        store, keys = self._seed_store(tmp_path / "store")
        store.path_for(keys[0]).write_text("truncated")
        report_path = tmp_path / "report.json"
        code, out = _run(capsys, ["--json", str(report_path), "store",
                                  "fsck", str(tmp_path / "store")])
        assert code == 1
        assert "corrupt_entry" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] is False
        assert report["issues"][0]["kind"] == "corrupt_entry"

    def test_gc_dry_run_then_real(self, capsys, tmp_path):
        store, keys = self._seed_store(tmp_path / "store", failed=True)
        code, out = _run(capsys, ["store", "gc", str(tmp_path / "store"),
                                  "--dry-run"])
        assert code == 0
        assert "would remove 1 failed" in out
        assert store.contains(keys[1])

        code, out = _run(capsys, ["store", "gc", str(tmp_path / "store")])
        assert code == 0
        assert "removed 1 failed" in out
        assert not store.contains(keys[1])

        code, out = _run(capsys, ["store", "fsck",
                                  str(tmp_path / "store")])
        assert code == 0

    def test_store_requires_an_action(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["store"])

    def test_submit_to_unreachable_scheduler_exits_2(self, capsys, tmp_path):
        code = cli.main(["--steps", "4", "--workers-count", "6",
                         "--servers-count", "3", "sweep", "--gars",
                         "median", "--seeds", "0",
                         "--submit", "http://127.0.0.1:9"])
        assert code == 2
        assert "cannot reach scheduler" in capsys.readouterr().err
