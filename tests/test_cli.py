"""Tests for the command-line interface."""

import json

import pytest

from repro import cli


def _run(capsys, argv):
    exit_code = cli.main(argv)
    captured = capsys.readouterr()
    return exit_code, captured.out


BASE_ARGS = ["--steps", "6", "--workers-count", "6", "--servers-count", "3"]


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = cli.build_parser().parse_args(["figure3"])
        assert args.batch_size == 128
        assert args.preset == "small"


class TestSubcommands:
    def test_table1(self, capsys):
        code, out = _run(capsys, ["table1"])
        assert code == 0
        assert "1,756,426" in out

    def test_table1_json_output(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        code, _ = _run(capsys, ["--json", str(path), "table1"])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["total_parameters"] == 1756426

    def test_figure3(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["figure3", "--batch-size", "16"])
        assert code == 0
        assert "vanilla_tf" in out
        assert "top-1 accuracy" in out  # the ASCII chart was rendered

    def test_figure4(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["figure4"])
        assert code == 0
        assert "guanyu_byzantine" in out

    def test_table2(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["table2", "--interval", "2"])
        assert code == 0
        assert "cos_phi" in out

    def test_overhead(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["overhead"])
        assert code == 0
        assert "runtime_overhead_percent" in out

    def test_scaling_with_custom_worker_counts(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["scaling", "--workers", "6", "9"])
        assert code == 0
        assert "num_workers" in out

    def test_quorums(self, capsys):
        code, out = _run(capsys, ["--steps", "4", "--workers-count", "9",
                                  "--servers-count", "3", "quorums"])
        assert code == 0
        assert "q=" in out

    def test_gars(self, capsys):
        code, out = _run(capsys, BASE_ARGS + ["gars"])
        assert code == 0
        assert "multi_krum" in out

    def test_json_dump_for_histories(self, capsys, tmp_path):
        path = tmp_path / "fig4.json"
        code, _ = _run(capsys, BASE_ARGS + ["--json", str(path), "figure4"])
        assert code == 0
        payload = json.loads(path.read_text())
        assert "vanilla_tf_byzantine" in payload
