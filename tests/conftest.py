"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config) -> None:
    # The socket/cluster tests carry @pytest.mark.timeout(...) so a wedged
    # process cannot hang CI (pytest-timeout is in the dev requirements).
    # When the plugin is absent the marker must still be registered — the
    # timeouts then simply don't enforce, they never break collection.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout, enforced by pytest-timeout")

from repro.data import make_blobs_dataset
from repro.nn import build_model
from repro.nn.schedules import ConstantSchedule


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def blobs_split():
    """A small, easy classification task shared across integration tests."""
    dataset = make_blobs_dataset(num_samples=600, num_classes=3, num_features=4,
                                 cluster_std=0.8, seed=7)
    return dataset.split(0.8, seed=7)


@pytest.fixture()
def softmax_model_fn():
    """Factory producing identically-initialised linear classifiers."""
    return lambda: build_model("softmax", in_features=4, num_classes=3, seed=11)


@pytest.fixture()
def mlp_model_fn():
    """Factory producing identically-initialised small MLPs."""
    return lambda: build_model("mlp", in_features=4, hidden=(16,), num_classes=3, seed=11)


@pytest.fixture()
def fast_schedule():
    """A learning rate large enough for quick convergence on toy data."""
    return ConstantSchedule(0.05)
