"""Integration tests for the GuanYu trainer (the paper's core claims)."""

import numpy as np
import pytest

from repro import ClusterConfig, GuanYuTrainer
from repro.byzantine import (
    CorruptedModelAttack,
    EquivocationAttack,
    RandomGradientAttack,
    SilentServer,
    SilentWorker,
)
from repro.network.delays import LogNormalDelay
from repro.runtime.cost import INSTANT


def _guanyu(blobs_split, model_fn, schedule, *, servers=6, workers=9,
            f_servers=1, f_workers=2, seed=3, **kwargs):
    train, test = blobs_split
    config = ClusterConfig(num_servers=servers, num_workers=workers,
                           num_byzantine_servers=f_servers,
                           num_byzantine_workers=f_workers)
    return GuanYuTrainer(config=config, model_fn=model_fn, train_dataset=train,
                         test_dataset=test, batch_size=16, schedule=schedule,
                         seed=seed, **kwargs)


class TestBasicProtocol:
    def test_history_has_one_record_per_step(self, blobs_split, softmax_model_fn,
                                              fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule)
        history = trainer.run(num_steps=5, eval_every=2)
        assert len(history) == 5
        assert [r.step for r in history.records] == list(range(5))

    def test_simulated_time_strictly_increases(self, blobs_split, softmax_model_fn,
                                                fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule)
        history = trainer.run(num_steps=5, eval_every=5)
        times = history.times()
        assert np.all(np.diff(times) > 0)

    def test_correct_servers_start_identical(self, blobs_split, softmax_model_fn,
                                              fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule)
        params = [s.current_parameters() for s in trainer.correct_servers]
        for vector in params[1:]:
            assert np.allclose(vector, params[0])

    def test_invalid_run_arguments(self, blobs_split, softmax_model_fn, fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule)
        with pytest.raises(ValueError):
            trainer.run(num_steps=0)

    def test_attack_count_validation(self, blobs_split, softmax_model_fn,
                                     fast_schedule):
        with pytest.raises(ValueError):
            _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                    worker_attack=RandomGradientAttack(), num_attacking_workers=5)
        with pytest.raises(ValueError):
            _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                    num_attacking_workers=1)

    def test_deterministic_given_seed(self, blobs_split, softmax_model_fn,
                                      fast_schedule):
        a = _guanyu(blobs_split, softmax_model_fn, fast_schedule, seed=5)
        b = _guanyu(blobs_split, softmax_model_fn, fast_schedule, seed=5)
        ha = a.run(num_steps=4, eval_every=4)
        hb = b.run(num_steps=4, eval_every=4)
        assert np.allclose(a.global_parameters(), b.global_parameters())
        assert np.allclose(ha.times(), hb.times())


class TestConvergence:
    def test_converges_without_byzantine_nodes(self, blobs_split, softmax_model_fn,
                                                fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                          f_servers=0, f_workers=0, servers=3, workers=6)
        history = trainer.run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_converges_with_declared_but_inactive_byzantine(self, blobs_split,
                                                            softmax_model_fn,
                                                            fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule)
        history = trainer.run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_tolerates_byzantine_workers(self, blobs_split, softmax_model_fn,
                                         fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                          worker_attack=RandomGradientAttack(scale=100.0),
                          num_attacking_workers=2)
        history = trainer.run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_tolerates_byzantine_server_equivocation(self, blobs_split,
                                                     softmax_model_fn,
                                                     fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                          server_attack=EquivocationAttack(magnitude=50.0),
                          num_attacking_servers=1)
        history = trainer.run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_tolerates_byzantine_workers_and_servers_together(self, blobs_split,
                                                              softmax_model_fn,
                                                              fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                          worker_attack=RandomGradientAttack(scale=100.0),
                          num_attacking_workers=2,
                          server_attack=CorruptedModelAttack(noise_scale=100.0),
                          num_attacking_servers=1)
        history = trainer.run(num_steps=60, eval_every=20)
        assert history.final_accuracy() > 0.85

    def test_tolerates_silent_nodes(self, blobs_split, softmax_model_fn,
                                    fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                          worker_attack=SilentWorker(), num_attacking_workers=2,
                          server_attack=SilentServer(), num_attacking_servers=1)
        history = trainer.run(num_steps=40, eval_every=20)
        assert history.final_accuracy() > 0.8

    def test_asynchronous_heavy_tailed_delays_do_not_block_progress(
            self, blobs_split, softmax_model_fn, fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                          delay_model=LogNormalDelay(median=1e-3, sigma=2.0))
        history = trainer.run(num_steps=30, eval_every=30)
        assert len(history) == 30
        assert history.final_accuracy() > 0.6


class TestContractionBehaviour:
    def test_server_spread_stays_bounded_under_attack(self, blobs_split,
                                                      softmax_model_fn,
                                                      fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule,
                          server_attack=CorruptedModelAttack(noise_scale=100.0),
                          num_attacking_servers=1, cost_model=INSTANT)
        history = trainer.run(num_steps=40, eval_every=40)
        spreads = history.server_spreads()
        # The corrupted server sends models with noise of norm ~100·sqrt(d);
        # correct servers must never drift anywhere near that.
        assert np.nanmax(spreads) < 5.0

    def test_phase_durations_recorded_and_positive(self, blobs_split,
                                                   softmax_model_fn, fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule)
        history = trainer.run(num_steps=3, eval_every=3)
        for record in history.records:
            assert record.phase_durations is not None
            assert set(record.phase_durations) == {"phase1_models_and_gradients",
                                                   "phase2_server_update",
                                                   "phase3_server_exchange"}
            assert all(value > 0 for value in record.phase_durations.values())

    def test_global_parameters_is_median_of_correct_servers(self, blobs_split,
                                                            softmax_model_fn,
                                                            fast_schedule):
        trainer = _guanyu(blobs_split, softmax_model_fn, fast_schedule)
        trainer.run(num_steps=3, eval_every=3)
        stacked = np.stack([s.current_parameters() for s in trainer.correct_servers])
        assert np.allclose(trainer.global_parameters(), np.median(stacked, axis=0))


class TestQuorumEffects:
    def test_larger_gradient_quorum_slows_each_step(self, blobs_split,
                                                    softmax_model_fn, fast_schedule):
        """Paper §5.3: larger quorums mean more waiting per update."""
        train, test = blobs_split
        small_q = ClusterConfig(num_servers=3, num_workers=12,
                                gradient_quorum=3)
        large_q = ClusterConfig(num_servers=3, num_workers=12,
                                gradient_quorum=12)
        t_small = GuanYuTrainer(config=small_q, model_fn=softmax_model_fn,
                                train_dataset=train, batch_size=16,
                                schedule=fast_schedule, seed=0)
        t_large = GuanYuTrainer(config=large_q, model_fn=softmax_model_fn,
                                train_dataset=train, batch_size=16,
                                schedule=fast_schedule, seed=0)
        h_small = t_small.run(num_steps=10, eval_every=10)
        h_large = t_large.run(num_steps=10, eval_every=10)
        assert h_large.total_time() > h_small.total_time()
