"""Unit tests for the core autograd engine (repro.tensor.tensor)."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradient_check, no_grad


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor(np.ones(3)).requires_grad

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len_is_leading_dimension(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_detach_shares_data_but_not_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_independent(self):
        t = Tensor(np.ones(3), requires_grad=True)
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_zeros_ones_randn_constructors(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)
        r = Tensor.randn(4, 5, rng=np.random.default_rng(0))
        assert r.shape == (4, 5)


class TestArithmeticBackward:
    def test_add_backward(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (x + y).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])
        assert np.allclose(y.grad, [1.0, 1.0])

    def test_mul_backward(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (x * y).sum().backward()
        assert np.allclose(x.grad, [3.0, 4.0])
        assert np.allclose(y.grad, [1.0, 2.0])

    def test_sub_and_neg_backward(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = Tensor(np.array([5.0, 5.0]), requires_grad=True)
        (x - y).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])
        assert np.allclose(y.grad, [-1.0, -1.0])

    def test_div_backward(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        y = Tensor(np.array([2.0]), requires_grad=True)
        (x / y).backward(np.array([1.0]))
        assert np.allclose(x.grad, [0.5])
        assert np.allclose(y.grad, [-1.0])

    def test_pow_backward(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x ** 2).backward(np.array([1.0]))
        assert np.allclose(x.grad, [6.0])

    def test_scalar_broadcasting_backward(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        (x * 2.0 + 1.0).sum().backward()
        assert np.allclose(x.grad, 2.0 * np.ones((2, 3)))

    def test_broadcast_add_unbroadcasts_gradient(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [4.0, 4.0, 4.0])

    def test_matmul_backward_matches_numeric(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        assert gradient_check(lambda x, y: x @ y, [a, b])

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward(np.array([1.0]))
        assert np.allclose(x.grad, [7.0])

    def test_rsub_and_rtruediv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (10.0 - x).backward(np.array([1.0]))
        assert np.allclose(x.grad, [-1.0])
        x.zero_grad()
        (8.0 / x).backward(np.array([1.0]))
        assert np.allclose(x.grad, [-2.0])

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        with pytest.raises(TypeError):
            _ = x ** Tensor(np.array([2.0]))


class TestReductionsAndShapes:
    def test_sum_axis_backward(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=1).sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3)))

    def test_mean_backward(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, np.full((2, 3), 1.0 / 6.0))

    def test_mean_with_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.mean(axis=0)
        assert np.allclose(out.data, [1.5, 2.5, 3.5])

    def test_max_backward_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_with_ties_splits_gradient(self):
        x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad.sum(), 1.0)

    def test_reshape_backward(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_backward(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.T.sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_backward(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_stack_and_concatenate_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        Tensor.stack([a, b]).sum().backward()
        assert np.allclose(a.grad, np.ones(3))
        a.zero_grad(), b.zero_grad()
        Tensor.concatenate([a, b]).sum().backward()
        assert np.allclose(b.grad, np.ones(3))


class TestElementwiseOps:
    @pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid", "exp"])
    def test_elementwise_gradcheck(self, op):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(4, 3)) + 0.1, requires_grad=True)
        assert gradient_check(lambda t: getattr(t, op)(), [x])

    def test_log_gradcheck_positive_inputs(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.uniform(0.5, 2.0, size=(4, 3)), requires_grad=True)
        assert gradient_check(lambda t: t.log(), [x])

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_relu_zero_at_negative(self):
        x = Tensor(np.array([-1.0, 2.0]))
        assert np.allclose(x.relu().data, [0.0, 2.0])


class TestAutogradMachinery:
    def test_backward_on_non_scalar_requires_grad_argument(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward(np.ones(3))

    def test_no_grad_context_disables_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_no_grad_restores_state_after_exception(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        y = (x * 2).sum()
        assert y.requires_grad

    def test_deep_chain_backward(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(200):
            y = y * 1.01
        y.backward(np.array([1.0]))
        assert x.grad[0] == pytest.approx(1.01 ** 200, rel=1e-9)

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        (a + b).backward(np.array([1.0]))
        assert np.allclose(x.grad, [8.0])
