"""CLI surface of the process cluster runtime + graceful interruption.

Covers the ``repro cluster`` subcommand end-to-end, ``repro sweep
--runtime cluster``, and the SIGINT/SIGTERM contract of both: completed
results stay flushed in the ``--store`` and the process exits with the
distinct code 3 (``repro.cli.EXIT_INTERRUPTED``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import cli
from repro.campaign import ResultStore
from repro.runtime.cluster import cluster_available

needs_sockets = pytest.mark.skipif(
    not cluster_available(), reason="host cannot bind sockets")

BASE = ["--steps", "2", "--workers-count", "4", "--servers-count", "3",
        "--seed", "5"]


def _run(capsys, argv):
    exit_code = cli.main(argv)
    captured = capsys.readouterr()
    return exit_code, captured.out, captured.err


class TestParser:
    def test_cluster_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["cluster", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--transport" in out and "--faults" in out

    def test_sweep_grew_a_runtime_flag(self):
        args = cli.build_parser().parse_args(
            ["sweep", "--runtime", "cluster"])
        assert args.runtime == "cluster"

    def test_exit_interrupted_is_distinct(self):
        assert cli.EXIT_INTERRUPTED == 3
        assert cli.EXIT_INTERRUPTED not in (0, 1, 2)


class TestClusterCommand:
    def test_invalid_gar_exits_2(self, capsys):
        code, _, err = _run(capsys, BASE + ["cluster", "--gar", "nonsense"])
        assert code == 2
        assert "error:" in err

    def test_sweep_runtime_demands_threaded_trainer(self, capsys):
        # default --trainer is the sequential simulator: spec validation
        # must reject the pairing before anything runs
        code, _, err = _run(capsys, BASE + ["sweep", "--runtime", "cluster",
                                            "--gars", "median"])
        assert code == 2
        assert "guanyu_threaded" in err

    def test_sweep_spec_file_rejects_runtime_flag(self, capsys, tmp_path):
        spec_file = tmp_path / "campaign.json"
        spec_file.write_text(json.dumps({"name": "c", "scenarios": []}))
        code, _, err = _run(capsys, BASE + ["sweep", "--spec", str(spec_file),
                                            "--runtime", "cluster"])
        assert code == 2
        assert "--runtime" in err

    @needs_sockets
    @pytest.mark.timeout(180)
    def test_cluster_end_to_end_with_store(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        code, out, _ = _run(capsys, BASE + ["cluster", "--store",
                                            str(store_dir)])
        assert code == 0
        assert "Node lifecycle" in out
        assert "done" in out
        store = ResultStore(store_dir)
        assert len(store) == 1
        stored = store.get(store.keys()[0])
        assert stored.spec.runtime == "cluster"
        assert len(stored.history.records) == 2

    @needs_sockets
    @pytest.mark.timeout(180)
    def test_json_report_is_one_machine_readable_document(self, capsys):
        code, out, _ = _run(capsys, BASE + ["cluster", "--json"])
        assert code == 0
        document = json.loads(out)  # whole stdout is the JSON document
        assert document["scenario"] == "cluster"
        assert document["elapsed_seconds"] > 0.0
        nodes = document["report"]["nodes"]
        assert len(nodes) == 7  # 3 servers + 4 workers
        for info in nodes.values():
            assert info["state"] == "done"
            assert info["pids"] and info["exit_codes"] == [0]
            assert info["respawns"] == 0

    @needs_sockets
    @pytest.mark.timeout(180)
    def test_sweep_runs_cluster_runtime_end_to_end(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        code, out, _ = _run(capsys, BASE + [
            "sweep", "--trainer", "guanyu_threaded", "--runtime", "cluster",
            "--gars", "median", "--store", str(store_dir),
            "--processes", "1"])
        assert code == 0
        assert "failed 0" in out
        store = ResultStore(store_dir)
        assert len(store) == 1
        assert store.get(store.keys()[0]).spec.runtime == "cluster"


@pytest.mark.timeout(180)
class TestGracefulInterruption:
    """Deliver real signals to a real `repro sweep` subprocess."""

    @staticmethod
    def _spawn_sweep(store_dir):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # enough scenarios x steps that the campaign outlives the signal
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "--steps", "60",
             "sweep", "--gars", "median", "mean", "trimmed_mean",
             "multi_krum", "krum", "--store", str(store_dir),
             "--processes", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)

    @staticmethod
    def _wait_for_first_entry(store_dir, timeout=90.0):
        deadline = time.monotonic() + timeout
        store = ResultStore(store_dir)
        while time.monotonic() < deadline:
            if len(store) >= 1:
                return True
            time.sleep(0.2)
        return False

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_exits_3_and_keeps_flushed_results(self, tmp_path,
                                                      signum):
        store_dir = tmp_path / "store"
        process = self._spawn_sweep(store_dir)
        try:
            assert self._wait_for_first_entry(store_dir), \
                "no scenario completed before the signal"
            process.send_signal(signum)
            out, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == cli.EXIT_INTERRUPTED
        assert "interrupted" in out
        # whatever finished before the signal is still readable
        store = ResultStore(store_dir)
        assert len(store) >= 1
        for key in store.keys():
            assert store.get(key).history.records
