"""Tests for the ASCII plotting and table rendering utilities."""

import numpy as np
import pytest

from repro.metrics.tracker import StepRecord, TrainingHistory
from repro.plotting import (
    AsciiChart,
    format_table,
    histories_summary_table,
    render_histories,
    sparkline,
)


def _history(name, accuracies):
    history = TrainingHistory(label=name)
    for step, accuracy in enumerate(accuracies):
        history.add(StepRecord(step=step, simulated_time=float(step + 1),
                               test_accuracy=accuracy))
    return history


class TestSparkline:
    def test_length_bounded_by_width(self):
        line = sparkline(list(np.linspace(0, 1, 200)), width=40)
        assert 0 < len(line) <= 41

    def test_monotone_series_ends_high(self):
        line = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_empty_and_nan_series(self):
        assert sparkline([]) == ""
        assert sparkline([float("nan")]) == ""


class TestAsciiChart:
    def test_render_contains_markers_and_legend(self):
        chart = AsciiChart(width=40, height=10, x_label="steps", y_label="acc")
        chart.add_series("a", [0, 1, 2, 3], [0.1, 0.4, 0.6, 0.9])
        chart.add_series("b", [0, 1, 2, 3], [0.2, 0.3, 0.35, 0.4])
        rendered = chart.render()
        assert "o=a" in rendered
        assert "x=b" in rendered
        assert "o" in rendered and "x" in rendered

    def test_empty_chart(self):
        assert AsciiChart().render() == "(empty chart)"

    def test_mismatched_series_lengths_raise(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("bad", [0, 1], [0.5])

    def test_too_small_chart_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart(width=5, height=2)

    def test_nan_values_dropped(self):
        chart = AsciiChart(width=30, height=8)
        chart.add_series("a", [0, 1, 2], [0.5, float("nan"), 0.7])
        assert "o" in chart.render()

    def test_constant_series_does_not_divide_by_zero(self):
        chart = AsciiChart(width=30, height=8)
        chart.add_series("flat", [0, 1, 2], [0.5, 0.5, 0.5])
        assert isinstance(chart.render(), str)


class TestRenderHistories:
    def test_steps_and_time_axes(self):
        histories = {"sys_a": _history("sys_a", [0.2, 0.5, 0.8]),
                     "sys_b": _history("sys_b", [0.1, 0.3, 0.6])}
        by_steps = render_histories(histories, x_axis="steps")
        by_time = render_histories(histories, x_axis="time")
        assert "model updates" in by_steps
        assert "simulated s" in by_time
        assert "sys_a" in by_steps and "sys_b" in by_steps

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            render_histories({"a": _history("a", [0.5])}, x_axis="epochs")


class TestTables:
    def test_format_table_alignment_and_missing_cells(self):
        rows = [{"name": "vanilla", "acc": 0.98},
                {"name": "guanyu", "acc": 0.97, "extra": 1}]
        table = format_table(rows, columns=["name", "acc", "extra"])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "0.980" in table
        assert "-" in lines[2]  # missing 'extra' for the first row

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_histories_summary_table_contains_throughput(self):
        histories = {"sys": _history("sys", [0.2, 0.9])}
        table = histories_summary_table(histories, target_accuracy=0.5)
        assert "updates_per_s" in table
        assert "time_to_target" in table
        assert "sys" in table


class TestPhaseBreakdown:
    @staticmethod
    def _span(name, dur, source=None):
        from repro.obs.tracer import TraceEvent

        return TraceEvent(name=name, kind="span", ts=0.0, dur=dur,
                          source=source)

    @staticmethod
    def _summary_event(spans, source=None):
        from repro.obs.tracer import TraceEvent

        return TraceEvent(name="cluster.node", kind="event", source=source,
                          attrs={"trace_summary": {"spans": spans}})

    def test_folds_pooled_summaries_without_raw_spans(self):
        from repro.plotting.timeline import phase_breakdown_rows

        rows = phase_breakdown_rows([
            self._summary_event({"phase.a": {"count": 2, "total_s": 1.0}})])
        (row,) = rows
        assert row["phase"] == "phase.a"
        assert row["count"] == 2

    def test_merged_multi_source_trace_is_not_double_counted(self):
        from repro.plotting.timeline import phase_breakdown_rows

        # a cluster trace carries each node's raw spans AND a per-node
        # summary event, all tagged with the same source: the summary must
        # be skipped, not added on top
        records = [
            self._span("clu.worker.compute", 1.0, source="worker/0"),
            self._span("clu.worker.compute", 1.0, source="worker/1"),
            self._summary_event({"clu.worker.compute":
                                 {"count": 1, "total_s": 1.0}},
                                source="worker/0"),
            self._summary_event({"clu.worker.compute":
                                 {"count": 1, "total_s": 1.0}},
                                source="worker/1"),
        ]
        (row,) = phase_breakdown_rows(records)
        assert row["count"] == 2
        assert row["total_s"] == pytest.approx(2.0)

    def test_summary_from_an_unseen_source_still_folds(self):
        from repro.plotting.timeline import phase_breakdown_rows

        # a process whose raw spans were dropped (ring-buffer overflow)
        # still contributes through its summary
        records = [
            self._span("clu.worker.compute", 1.0, source="worker/0"),
            self._summary_event({"clu.worker.compute":
                                 {"count": 3, "total_s": 3.0}},
                                source="worker/7"),
        ]
        (row,) = phase_breakdown_rows(records)
        assert row["count"] == 4
        assert row["total_s"] == pytest.approx(4.0)
