"""Tier-1 gate: the process cluster runtime matches the threaded runtime.

Under truly-full quorums (declared Byzantine counts 0, quorum = every
sender) and permutation-invariant median-family GARs, each node's quorum
multiset is scheduling-independent — so the loss trajectory of a cluster
of real OS processes over real sockets must be **bit-identical** to the
in-process threaded runtime's, per seed.  These tests pin that, plus the
fault semantics that make the cluster "real": a scheduled crash SIGKILLs
an actual process (PID observed dead), and content addresses of pre-PR
stores stay valid (``runtime`` absent ≡ legacy in the spec hash).
"""

from __future__ import annotations

import os

import pytest

from repro.campaign.engine import build_trainer
from repro.campaign.spec import ScenarioSpec
from repro.faults import FaultEvent, FaultSchedule
from repro.runtime.cluster import ClusterRuntime, cluster_available

needs_sockets = pytest.mark.skipif(
    not cluster_available(), reason="host cannot bind sockets")


def small_spec(**overrides) -> ScenarioSpec:
    """Smallest admissible cluster (n >= 3f + 3 with f = 0), full quorums,
    median-family rules: the envelope where cluster == threaded holds
    bit-exactly."""
    base = dict(name="cluster-eq", trainer="guanyu_threaded",
                num_workers=4, num_servers=3,
                declared_byzantine_workers=0, declared_byzantine_servers=0,
                model_quorum=3, gradient_quorum=4,
                gradient_rule="median", model_rule="median",
                num_steps=2, seed=9, quorum_timeout=30.0)
    base.update(overrides)
    return ScenarioSpec(**base)


def losses_of(history):
    return [record.train_loss for record in history.records]


def threaded_losses(spec: ScenarioSpec):
    return losses_of(build_trainer(spec).run(spec.num_steps))


@needs_sockets
@pytest.mark.timeout(180)
class TestClusterEquivalence:
    @pytest.mark.parametrize("rule", ["median", "trimmed_mean"])
    def test_losses_identical_to_threaded(self, rule):
        spec = small_spec(gradient_rule=rule, model_rule="median")
        expected = threaded_losses(spec)
        runtime = ClusterRuntime(spec.replace(runtime="cluster"))
        actual = losses_of(runtime.run(spec.num_steps))
        assert actual == expected
        report = runtime.report()
        assert all(node["state"] == "done"
                   for node in report["nodes"].values())

    def test_crash_event_kills_a_real_process(self):
        # worker/3 crashes forever at step 0, so every step runs with
        # exactly gradient_quorum = 3 live senders — the quorum multiset
        # stays scheduling-independent and the trajectories must match.
        # (A later crash step would leave step 0 racing 4 senders for 3
        # quorum slots, which is legitimately nondeterministic.)
        faults = FaultSchedule(events=[
            FaultEvent(step=0, kind="crash", nodes=["worker/3"])])
        spec = small_spec(gradient_quorum=3, num_steps=3, faults=faults)
        expected = threaded_losses(spec)

        runtime = ClusterRuntime(spec.replace(runtime="cluster"))
        actual = losses_of(runtime.run(spec.num_steps))
        assert actual == expected  # run completed via quorum

        node = runtime.report()["nodes"]["worker/3"]
        assert node["state"] == "killed"
        assert node["exit_codes"] == [-9]  # SIGKILL, a real OS process
        assert node["crashed_steps"] == [0]
        assert node["respawns"] == 0
        # the PID must be demonstrably dead
        with pytest.raises(ProcessLookupError):
            os.kill(node["pids"][0], 0)

    def test_respawn_after_recover_matches_threaded(self):
        # full gradient quorum: while worker/1 is down nobody can assemble
        # a quorum, so every node sits the crash window out (None losses),
        # then the supervisor respawns the process and the run resumes.
        faults = FaultSchedule(events=[
            FaultEvent(step=1, kind="crash", nodes=["worker/1"]),
            FaultEvent(step=3, kind="recover", nodes=["worker/1"])])
        spec = small_spec(num_steps=4, faults=faults)
        expected = threaded_losses(spec)
        assert None in expected  # the crash window really sat out

        runtime = ClusterRuntime(spec.replace(runtime="cluster"))
        actual = losses_of(runtime.run(spec.num_steps))
        assert actual == expected

        node = runtime.report()["nodes"]["worker/1"]
        assert node["state"] == "done"
        assert node["respawns"] == 1
        assert node["exit_codes"] == [-9, 0]  # killed, then a fresh process
        assert len(set(node["pids"])) == 2

    def test_engine_dispatches_cluster_runtime(self):
        spec = small_spec(runtime="cluster")
        trainer = build_trainer(spec)
        assert isinstance(trainer, ClusterRuntime)


class TestContentAddressCompatibility:
    # literal values computed with the pre-cluster codebase: adding the
    # `runtime` field must not invalidate any existing store entry
    PINNED_SPEC_HASH = \
        "4c4a20a7e4e5d49c3b6d2815a05161838fc5c6eaa40c7ff5169c0c6a70c5bbce"
    PINNED_GROUP_HASH = \
        "4c6919bfb42a45d27918226fbb01b44785361a7462bf999362a3eaa874bcd519"

    @staticmethod
    def pin_spec() -> ScenarioSpec:
        # every non-default field spelled out: the hash covers all of them
        return ScenarioSpec(name="pin", trainer="guanyu",
                            gradient_rule="median", model_rule="median",
                            num_workers=4, num_servers=3,
                            declared_byzantine_workers=0,
                            declared_byzantine_servers=0,
                            model_quorum=3, gradient_quorum=4,
                            num_steps=2, seed=9)

    def test_absent_runtime_hashes_like_legacy(self):
        spec = self.pin_spec()
        assert spec.runtime is None
        assert spec.spec_hash() == self.PINNED_SPEC_HASH
        assert spec.batch_group_hash() == self.PINNED_GROUP_HASH

    def test_cluster_runtime_changes_the_hash(self):
        spec = self.pin_spec()
        assert spec.replace(runtime="cluster").spec_hash() \
            != self.PINNED_SPEC_HASH

    def test_runtime_roundtrips_through_dict(self):
        spec = small_spec(runtime="cluster")
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.runtime == "cluster"
        assert clone.spec_hash() == spec.spec_hash()

    def test_runtime_requires_threaded_trainer(self):
        with pytest.raises(ValueError, match="guanyu_threaded"):
            ScenarioSpec(name="bad", trainer="guanyu",
                         runtime="cluster").validate()

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError, match="runtime"):
            small_spec(runtime="quantum").validate()
