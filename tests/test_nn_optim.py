"""Tests for optimisers and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Dense, MomentumSGD
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.schedules import (
    ConstantSchedule,
    InverseTimeDecay,
    StepDecay,
    partial_sums,
)
from repro.tensor import Tensor


class Quadratic(Module):
    """f(w) = ||w - target||^2 — a convex test objective."""

    def __init__(self, target):
        super().__init__()
        self.w = Parameter(np.zeros_like(target))
        self.target = np.asarray(target, dtype=np.float64)

    def forward(self, x=None):
        diff = self.w - Tensor(self.target)
        return (diff * diff).sum()


def _train(optimizer, model, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = model(None)
        loss.backward()
        optimizer.step()
    return float(model(None).item())


class TestOptimizers:
    target = np.array([1.0, -2.0, 3.0])

    def test_sgd_converges_on_quadratic(self):
        model = Quadratic(self.target)
        assert _train(SGD(model, 0.1), model) < 1e-6

    def test_momentum_converges_on_quadratic(self):
        model = Quadratic(self.target)
        assert _train(MomentumSGD(model, 0.05, momentum=0.9), model) < 1e-6

    def test_adam_converges_on_quadratic(self):
        model = Quadratic(self.target)
        assert _train(Adam(model, 0.1), model, steps=400) < 1e-4

    def test_sgd_weight_decay_shrinks_weights(self):
        model = Quadratic(np.zeros(3))
        model.w.data[...] = 10.0
        optimizer = SGD(model, 0.1, weight_decay=0.5)
        _train(optimizer, model, steps=50)
        assert np.all(np.abs(model.w.data) < 10.0)

    def test_invalid_learning_rate_raises(self):
        with pytest.raises(ValueError):
            SGD(Quadratic(self.target), learning_rate=0.0)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            MomentumSGD(Quadratic(self.target), momentum=1.5)

    def test_step_skips_parameters_without_gradients(self):
        model = Quadratic(self.target)
        before = model.w.data.copy()
        SGD(model, 0.1).step()
        assert np.allclose(model.w.data, before)

    def test_step_flat_applies_external_gradient(self):
        layer = Dense(2, 2, rng=np.random.default_rng(0))
        optimizer = SGD(layer, 0.5)
        before = layer.get_flat_parameters()
        optimizer.step_flat(np.ones_like(before))
        assert np.allclose(layer.get_flat_parameters(), before - 0.5)


class TestLosses:
    def test_mse_loss_zero_for_equal_inputs(self):
        loss = MSELoss()(Tensor(np.ones((2, 3))), np.ones((2, 3)))
        assert loss.item() == pytest.approx(0.0)

    def test_mse_loss_value(self):
        loss = MSELoss()(Tensor(np.zeros(4)), np.full(4, 2.0))
        assert loss.item() == pytest.approx(4.0)

    def test_cross_entropy_loss_callable(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        loss = CrossEntropyLoss()(logits, np.array([0, 2]))
        loss.backward()
        assert logits.grad is not None


class TestSchedules:
    def test_constant_schedule(self):
        schedule = ConstantSchedule(0.01)
        assert schedule(0) == schedule(1000) == 0.01
        assert not schedule.satisfies_robbins_monro()

    def test_inverse_time_decay_decreases(self):
        schedule = InverseTimeDecay(initial=0.1, decay=0.1)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(100) < schedule(10) < schedule(0)
        assert schedule.satisfies_robbins_monro()

    def test_step_decay_piecewise(self):
        schedule = StepDecay(initial=1.0, factor=0.5, period=10)
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_invalid_configurations_raise(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
        with pytest.raises(ValueError):
            InverseTimeDecay(initial=-1.0)
        with pytest.raises(ValueError):
            InverseTimeDecay(power=0.3)
        with pytest.raises(ValueError):
            StepDecay(factor=2.0)

    def test_partial_sums_reflect_robbins_monro_behaviour(self):
        # 1/t decay: Ση grows without bound while Ση² stays bounded.
        decay = InverseTimeDecay(initial=1.0, decay=1.0, power=1.0)
        total_short, square_short = partial_sums(decay, 100)
        total_long, square_long = partial_sums(decay, 10000)
        # The harmonic-like sum keeps growing (log n), the squared sum stalls.
        assert total_long > 1.8 * total_short
        assert square_long < square_short + 0.2
