"""Sidecar index, query grammar, fsck/gc hygiene and delete telemetry.

The store's redesign promise is a single observable: however many entries
a store holds, ``keys()`` / ``query()`` / ``summary_rows()`` answer from
the per-shard ``index.jsonl`` without opening one entry payload — and the
index is a *cache*, so every way it can go wrong (missing, stale, torn,
deliberately corrupted) must resolve to either a silent rebuild or an
explicit ``fsck`` finding.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.campaign import ResultStore, ScenarioSpec
from repro.campaign.index import INDEX_FILENAME, StoreIndex
from repro.campaign.spec import AttackSpec
from repro.obs import MetricsRegistry, StepRecord, TrainingHistory, use_registry


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(name="tiny", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=2, eval_every=2, dataset_size=300,
                max_eval_samples=64)
    base.update(overrides)
    return ScenarioSpec(**base)


def tiny_history(accuracy: float = 0.75) -> TrainingHistory:
    history = TrainingHistory(label="tiny")
    history.add(StepRecord(step=1, simulated_time=2.5,
                           test_accuracy=accuracy))
    return history


# --------------------------------------------------------------------------- #
# The core promise: index-backed reads never open payloads
# --------------------------------------------------------------------------- #
class TestIndexBackedReads:
    def test_query_on_1k_entry_store_opens_no_payloads(self, tmp_path):
        root = tmp_path / "store"
        writer = ResultStore(root)
        for seed in range(1000):
            writer.put(tiny_spec(name=f"s{seed}", seed=seed),
                       tiny_history(accuracy=seed / 1000.0),
                       duration_seconds=0.01)

        # a fresh handle sees only the index the writer left behind
        store = ResultStore(root)
        assert len(store.keys()) == 1000
        hits = store.query(seed=123)
        assert [r.spec.seed for r in hits] == [123]
        rows = store.summary_rows()
        assert len(rows) == 1000
        assert store.payload_reads == 0  # the acceptance criterion

        # one lazy history access pays exactly one payload read
        assert not hits[0].history_loaded
        assert hits[0].history.final_accuracy() == pytest.approx(0.123)
        assert hits[0].history_loaded
        assert store.payload_reads == 1

    def test_summary_rows_come_from_the_index(self, tmp_path):
        writer = ResultStore(tmp_path / "store")
        spec = tiny_spec(seed=7)
        writer.put(spec, tiny_history(accuracy=0.5), duration_seconds=1.0)
        store = ResultStore(tmp_path / "store")
        (row,) = store.summary_rows()
        assert row["scenario"] == "tiny" and row["seed"] == 7
        assert row["final_accuracy"] == pytest.approx(0.5)
        assert row["sim_time_s"] == pytest.approx(2.5)
        assert row["key"] == spec.spec_hash()[:10]
        assert store.payload_reads == 0

    def test_missing_index_rebuilds_transparently(self, tmp_path):
        writer = ResultStore(tmp_path / "store")
        for seed in (1, 2, 3):
            writer.put(tiny_spec(seed=seed), tiny_history())
        for index_path in (tmp_path / "store").glob(f"??/{INDEX_FILENAME}"):
            index_path.unlink()

        store = ResultStore(tmp_path / "store")
        assert {r.spec.seed for r in store.query(name="tiny")} == {1, 2, 3}
        rebuilt_reads = store.payload_reads
        assert rebuilt_reads == 3  # one per payload, once
        store.query(seed=2)  # now served from the rebuilt index
        assert store.payload_reads == rebuilt_reads

    def test_foreign_writer_is_detected_by_freshness_check(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(tiny_spec(seed=1), tiny_history())
        assert len(store) == 1

        # another process writes an entry without touching our index view
        other = ResultStore(tmp_path / "store")
        key = other.put(tiny_spec(seed=2), tiny_history())

        # key-set freshness check notices the new stem and rebuilds
        assert key in store.keys()
        assert {r.spec.seed for r in store.query(name="tiny")} == {1, 2}

    def test_load_all_is_the_slow_path(self, tmp_path):
        writer = ResultStore(tmp_path / "store")
        for seed in (1, 2):
            writer.put(tiny_spec(seed=seed), tiny_history())
        store = ResultStore(tmp_path / "store")
        results = list(store.load_all())
        assert all(r.history_loaded for r in results)
        assert store.payload_reads == 2


# --------------------------------------------------------------------------- #
# Query grammar: top-level, dotted, meta
# --------------------------------------------------------------------------- #
class TestQueryGrammar:
    def test_existing_flat_filters_keep_working(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(tiny_spec(name="m", gradient_rule="median"),
                  tiny_history())
        store.put(tiny_spec(name="k", gradient_rule="krum"), tiny_history())
        assert [r.spec.name for r in store.query(gradient_rule="median")] \
            == ["m"]
        assert [r.spec.name
                for r in store.query(gradient_rule="krum", name="k")] == ["k"]

    def test_attack_filters_match_on_the_name(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(tiny_spec(name="atk",
                            worker_attack=AttackSpec("sign_flip")),
                  tiny_history())
        store.put(tiny_spec(name="clean"), tiny_history())
        assert [r.spec.name
                for r in store.query(worker_attack="sign_flip")] == ["atk"]

    def test_dotted_nested_spec_filter(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(tiny_spec(name="het",
                            hetero={"partition": "dirichlet", "alpha": 0.5}),
                  tiny_history())
        store.put(tiny_spec(name="iid"), tiny_history())
        hits = store.query(**{"hetero.partition": "dirichlet"})
        assert [r.spec.name for r in hits] == ["het"]
        # absent path on the iid entry is "no match", not an error
        assert store.query(**{"hetero.partition": "shards"}) == []

    def test_meta_status_filter(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(tiny_spec(seed=1), tiny_history(), status="ran")
        store.put(tiny_spec(seed=2), tiny_history(), status="failed")
        assert [r.spec.seed for r in store.query(status="ran")] == [1]
        assert [r.spec.seed for r in store.query(status="failed")] == [2]

    def test_dotted_meta_filter_reaches_extra_meta(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(tiny_spec(seed=1), tiny_history(),
                  extra_meta={"campaign": "sweep-a"})
        store.put(tiny_spec(seed=2), tiny_history(),
                  extra_meta={"campaign": "sweep-b"})
        hits = store.query(**{"meta.campaign": "sweep-b"})
        assert [r.spec.seed for r in hits] == [2]

    def test_unknown_field_names_nearest_valid_fields(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyError,
                           match="unknown scenario fields") as excinfo:
            store.query(gradent_rule="median")
        assert "nearest valid fields" in str(excinfo.value)
        assert "gradient_rule" in str(excinfo.value)

    def test_filters_compose_across_shapes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(tiny_spec(seed=1, gradient_rule="median"), tiny_history(),
                  status="ran")
        store.put(tiny_spec(seed=2, gradient_rule="median"), tiny_history(),
                  status="failed")
        hits = store.query(gradient_rule="median", status="ran")
        assert [r.spec.seed for r in hits] == [1]


# --------------------------------------------------------------------------- #
# Delete: telemetry gauge and index row (the PR's regression test)
# --------------------------------------------------------------------------- #
class TestDeleteTelemetry:
    def test_delete_decrements_gauge_and_drops_index_row(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = ResultStore(tmp_path / "store")
            keys = [store.put(tiny_spec(seed=seed), tiny_history())
                    for seed in (1, 2)]
            assert registry.gauge("repro_store_entries").value() == 2

            assert store.delete(keys[0]) is True
            assert registry.gauge("repro_store_entries").value() == 1
            assert store.keys() == [keys[1]]
            assert registry.counter("repro_store_ops_total") \
                .value(op="delete") == 1.0
            # gauge, files and index all agree afterwards
            assert store.fsck().ok

    def test_delete_of_absent_key_is_a_noop(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = ResultStore(tmp_path / "store")
            store.put(tiny_spec(seed=1), tiny_history())
            assert store.delete("0" * 64) is False
            assert registry.gauge("repro_store_entries").value() == 1


# --------------------------------------------------------------------------- #
# fsck
# --------------------------------------------------------------------------- #
class TestFsck:
    def test_healthy_store_is_ok(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for seed in (1, 2, 3):
            store.put(tiny_spec(seed=seed), tiny_history())
        report = store.fsck()
        assert report.ok
        assert report.entries == 3 and report.shards >= 1
        assert report.to_dict()["ok"] is True

    def test_detects_corrupted_entry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        store.put(tiny_spec(seed=2), tiny_history())
        store.path_for(key).write_text('{"version": 1, "spec": trunca')

        report = ResultStore(tmp_path / "store").fsck()
        kinds = {issue.kind for issue in report.issues}
        assert kinds == {"corrupt_entry"}
        (issue,) = report.issues
        assert issue.key == key

    def test_detects_stale_index_row(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history(), status="ran")
        # rewrite the payload's meta behind the index's back: the key set
        # still matches, so no rebuild hides the divergence
        path = store.path_for(key)
        payload = json.loads(path.read_text())
        payload["meta"]["status"] = "failed"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))

        report = ResultStore(tmp_path / "store").fsck()
        kinds = {issue.kind for issue in report.issues}
        assert kinds == {"stale_index_row"}

    def test_detects_orphan_index_row(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        store.put(tiny_spec(seed=2), tiny_history())
        store.path_for(key).unlink()  # entry gone, index row left behind

        report = ResultStore(tmp_path / "store").fsck()
        assert {issue.kind for issue in report.issues} \
            == {"orphan_index_row"}
        assert report.issues[0].key == key

    def test_detects_corrupt_index_line(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        index_path = store.index.index_path(key[:2])
        with open(index_path, "a", encoding="utf-8") as handle:
            handle.write('{"torn line\n')

        report = ResultStore(tmp_path / "store").fsck()
        assert {issue.kind for issue in report.issues} \
            == {"corrupt_index_line"}

    def test_detects_hash_mismatch(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        path = store.path_for(key)
        payload = json.loads(path.read_text())
        payload["spec"]["seed"] = 999  # content no longer hashes to the name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))

        report = ResultStore(tmp_path / "store").fsck()
        kinds = {issue.kind for issue in report.issues}
        assert "hash_mismatch" in kinds

    def test_detects_gauge_drift(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = ResultStore(tmp_path / "store")
            store.put(tiny_spec(seed=1), tiny_history())
            registry.set_gauge("repro_store_entries", 5)  # deliberate drift
            report = store.fsck()
        assert {issue.kind for issue in report.issues} == {"gauge_drift"}

    def test_fsck_is_read_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        store.path_for(key).write_text("garbage")
        before = sorted(p.name for p in (tmp_path / "store").rglob("*"))
        ResultStore(tmp_path / "store").fsck()
        after = sorted(p.name for p in (tmp_path / "store").rglob("*"))
        assert before == after


# --------------------------------------------------------------------------- #
# gc
# --------------------------------------------------------------------------- #
class TestGc:
    def test_dry_run_reports_without_changing_anything(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        failed_key = store.put(tiny_spec(seed=1), tiny_history(),
                               status="failed")
        store.put(tiny_spec(seed=2), tiny_history())
        stats = store.gc(dry_run=True)
        assert stats["removed_failed"] == 1
        assert stats["shards_compacted"] == 0
        assert store.contains(failed_key)  # nothing was touched
        assert len(store) == 2

    def test_gc_removes_failed_entries_and_compacts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        failed_key = store.put(tiny_spec(seed=1), tiny_history(),
                               status="failed")
        kept_key = store.put(tiny_spec(seed=2), tiny_history())
        stats = store.gc()
        assert stats["removed_failed"] == 1
        assert stats["entries"] == 1
        assert not store.contains(failed_key) and store.contains(kept_key)
        # compaction leaves one fresh row per live entry
        index_lines = [line for index_path
                       in (tmp_path / "store").glob(f"??/{INDEX_FILENAME}")
                       for line in index_path.read_text().splitlines()
                       if line.strip()]
        assert len(index_lines) == 1
        assert json.loads(index_lines[0])["key"] == kept_key

    def test_gc_removes_corrupt_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        store.put(tiny_spec(seed=2), tiny_history())
        store.path_for(key).write_text("not json")

        fresh = ResultStore(tmp_path / "store")
        stats = fresh.gc()
        assert stats["removed_corrupt"] == 1
        assert stats["entries"] == 1
        assert fresh.fsck().ok  # hygiene restored

    def test_gc_drops_orphan_rows(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        store.path_for(key).unlink()
        stats = ResultStore(tmp_path / "store").gc()
        assert stats["orphan_rows_dropped"] == 1
        assert stats["entries"] == 0


# --------------------------------------------------------------------------- #
# Concurrent index writers (real processes)
# --------------------------------------------------------------------------- #
def _churn(root: str, keep_payloads, churn_payloads, history_payload,
           rounds: int) -> None:
    """Child-process body: put keep-specs, put+delete churn-specs."""
    store = ResultStore(root)
    history = TrainingHistory.from_dict(history_payload)
    for _ in range(rounds):
        for payload in keep_payloads:
            store.put(ScenarioSpec.from_dict(payload), history,
                      duration_seconds=0.1)
        for payload in churn_payloads:
            spec = ScenarioSpec.from_dict(payload)
            store.put(spec, history, duration_seconds=0.1)
            store.delete(spec.spec_hash())


@pytest.mark.timeout(120)
class TestConcurrentIndexWriters:
    def test_two_processes_putting_and_deleting(self, tmp_path):
        root = str(tmp_path / "store")
        history_payload = tiny_history().to_dict()
        shared = tiny_spec(name="shared")  # both processes keep this key
        keep_a = [shared.to_dict(),
                  tiny_spec(name="a", seed=101).to_dict()]
        keep_b = [shared.to_dict(),
                  tiny_spec(name="b", seed=201).to_dict()]
        # churn keys are disjoint per process, so each key's index rows
        # are sequenced by a single writer and the final op wins cleanly
        churn_a = [tiny_spec(name="ca", seed=111).to_dict()]
        churn_b = [tiny_spec(name="cb", seed=211).to_dict()]
        procs = [
            multiprocessing.Process(
                target=_churn,
                args=(root, keep, churn, history_payload, 25))
            for keep, churn in ((keep_a, churn_a), (keep_b, churn_b))
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=90)
            assert proc.exitcode == 0

        store = ResultStore(root)
        expected = {shared.spec_hash()} | {
            ScenarioSpec.from_dict(p).spec_hash()
            for p in keep_a[1:] + keep_b[1:]}
        assert set(store.keys()) == expected
        # the index answers the full query without payloads, and agrees
        # byte-for-byte with what fsck derives from the files
        assert {r.spec.name for r in store.query(num_workers=6)} \
            == {"shared", "a", "b"}
        assert store.fsck().ok

    def test_index_survives_a_torn_line_mid_write(self, tmp_path):
        # simulate a writer killed mid-append: entry file exists, index
        # row is half a line — the freshness check must trigger a rebuild
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        index_path = store.index.index_path(key[:2])
        with open(index_path, "w", encoding="utf-8") as handle:
            handle.write('{"v": 1, "op": "put", "ke')  # torn

        fresh = ResultStore(tmp_path / "store")
        assert fresh.keys() == [key]  # rebuilt from the payload
        assert fresh.query(seed=1)[0].key == key
        # the rebuild rewrote the shard index; it is whole again
        assert json.loads(index_path.read_text().strip())["key"] == key


# --------------------------------------------------------------------------- #
# Index internals worth pinning down
# --------------------------------------------------------------------------- #
class TestStoreIndexUnit:
    def test_fold_latest_wins_and_del_removes(self):
        rows = [
            {"op": "put", "key": "k1", "meta": {"status": "ran"}},
            {"op": "put", "key": "k2", "meta": {"status": "ran"}},
            {"op": "put", "key": "k1", "meta": {"status": "failed"}},
            {"op": "del", "key": "k2"},
        ]
        folded = StoreIndex.fold(rows)
        assert set(folded) == {"k1"}
        assert folded["k1"]["meta"]["status"] == "failed"

    def test_appends_are_single_writes_of_whole_lines(self, tmp_path):
        index = StoreIndex(tmp_path)
        index.append_put("ab" + "0" * 62, {"name": "x"}, {"status": "ran"},
                         {"final_accuracy": None, "sim_time_s": 0.0})
        index.append_delete("ab" + "0" * 62)
        lines = (tmp_path / "ab" / INDEX_FILENAME).read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)
        assert index.fold_raw("ab") == {}

    def test_rebuild_skips_unreadable_payloads(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        good = store.put(tiny_spec(seed=1), tiny_history())
        bad = store.put(tiny_spec(seed=2), tiny_history())
        store.path_for(bad).write_text("junk")
        index = StoreIndex(tmp_path / "store")
        folded = index.rebuild(good[:2])
        assert good in folded
        assert bad not in folded or bad[:2] != good[:2]

    def test_stale_temp_files_are_swept_on_open(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put(tiny_spec(seed=1), tiny_history())
        shard = store.path_for(key).parent
        stale = shard / ".old-entry.json.1234.tmp"
        stale.write_text("half a payload")
        ancient = stale.stat().st_mtime - 2 * ResultStore.STALE_TEMP_SECONDS
        os.utime(stale, (ancient, ancient))
        ResultStore(tmp_path / "store")
        assert not stale.exists()
