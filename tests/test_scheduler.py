"""Campaign scheduler daemon: dedupe-before-run, HTTP API, job lifecycle.

The daemon's contract: a submitted campaign behaves exactly like a local
``repro sweep`` — same engine, same store dedupe — with the scheduler
adding only queueing and an HTTP surface.  The dedupe count is computed
against the store *index* at submission time, before any work is queued,
which is what ``sweep --submit`` prints as "already in the store".
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import run
from repro.campaign import CampaignScheduler, ResultStore, ScenarioSpec
from repro.campaign.spec import AttackSpec, CampaignSpec
from repro.obs import MetricsRegistry, MetricsServer, use_registry
from repro.runtime.cluster import cluster_available

needs_sockets = pytest.mark.skipif(
    not cluster_available(), reason="host cannot bind sockets")


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(name="tiny", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=2, eval_every=2, dataset_size=300,
                max_eval_samples=64)
    base.update(overrides)
    return ScenarioSpec(**base)


def seed_campaign(seeds, **overrides) -> CampaignSpec:
    return CampaignSpec(name="seeds", base=tiny_spec(**overrides),
                        grid={"seed": list(seeds)})


def wait_for(scheduler: CampaignScheduler, job_id: str,
             timeout: float = 60.0) -> dict:
    """Poll until the job leaves the queue/run states."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = scheduler.job(job_id)
        if job is not None and job["state"] in ("done", "failed"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


@pytest.mark.timeout(180)
class TestSchedulerCore:
    def test_dedupe_happens_before_any_work_is_queued(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        # pre-populate one of the campaign's two cells (stable API path)
        run(tiny_spec(seed=1), store=store)

        scheduler = CampaignScheduler(store)
        job = scheduler.submit(seed_campaign([1, 2]))
        # the dedupe count is in the submission reply — computed from the
        # store index before the worker thread ever sees the job
        assert job["state"] == "queued"
        assert job["total"] == 2
        assert job["cached_at_submit"] == 1

        with scheduler:
            finished = wait_for(scheduler, job["id"])
        assert finished["state"] == "done"
        assert finished["counts"] == {"cached": 1, "ran": 1}
        assert finished["completed"] == 2
        assert len(store) == 2

    def test_resubmission_is_fully_cached(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with CampaignScheduler(store) as scheduler:
            first = wait_for(scheduler,
                             scheduler.submit(seed_campaign([1, 2]))["id"])
            assert first["counts"] == {"ran": 2}
            again = scheduler.submit(seed_campaign([1, 2]))
            assert again["cached_at_submit"] == 2
            finished = wait_for(scheduler, again["id"])
        assert finished["state"] == "done"
        assert finished["counts"] == {"cached": 2}

    def test_scenario_failures_mark_the_job_failed(self, tmp_path):
        # label_flip with num_classes=10 fails at runtime on the 4-class
        # task (same injection test_campaign uses); the job must finish
        # "failed" with the scenario named, and the daemon must survive
        store = ResultStore(tmp_path / "store")
        bad = CampaignSpec(name="bad", scenarios=[
            tiny_spec(name="good"),
            tiny_spec(name="boom",
                      worker_attack=AttackSpec("label_flip",
                                               {"num_classes": 10})),
        ])
        with CampaignScheduler(store) as scheduler:
            finished = wait_for(scheduler, scheduler.submit(bad)["id"])
            assert finished["state"] == "failed"
            assert [f["scenario"] for f in finished["failures"]] == ["boom"]
            assert finished["error"] is None  # engine isolated the failure
            # the daemon still takes and finishes work afterwards
            after = wait_for(scheduler,
                             scheduler.submit(seed_campaign([9]))["id"])
        assert after["state"] == "done"

    def test_invalid_campaign_queues_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scheduler = CampaignScheduler(store)
        inadmissible = CampaignSpec(
            name="inadmissible", base=tiny_spec(),
            grid={"declared_byzantine_workers": [1, 5]})  # 5 breaks n>=3f+3
        with pytest.raises(ValueError):
            scheduler.submit(inadmissible)
        assert scheduler.jobs() == []

    def test_status_document_and_telemetry(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = ResultStore(tmp_path / "store")
            run(tiny_spec(seed=1), store=store)
            with CampaignScheduler(store, processes=None) as scheduler:
                job = scheduler.submit(seed_campaign([1]))
                wait_for(scheduler, job["id"])
                status = scheduler.status()
        assert status["kind"] == "repro.scheduler"
        assert status["store_entries"] == 1
        assert status["jobs"] == {"done": 1}
        assert registry.counter(
            "repro_scheduler_scenarios_deduped_total").value() == 1.0
        assert registry.counter(
            "repro_scheduler_jobs_total").value(state="done") == 1.0
        assert registry.gauge(
            "repro_scheduler_jobs_pending").value() == 0


@needs_sockets
@pytest.mark.timeout(180)
class TestSchedulerOverHTTP:
    """End-to-end over a real socket: the acceptance-criterion path."""

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))

    def _post(self, url, document):
        request = urllib.request.Request(
            url, data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))

    def test_submitted_campaign_served_end_to_end(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run(tiny_spec(seed=1), store=store)

        with CampaignScheduler(store) as scheduler, \
                MetricsServer(0, status=scheduler.status,
                              routes=scheduler.handle_route) as server:
            status, job = self._post(
                server.url + "/campaigns",
                {"campaign": seed_campaign([1, 2]).to_dict()})
            assert status == 202
            assert job["cached_at_submit"] == 1  # deduped against the index

            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                _, job = self._get(server.url + f"/campaigns/{job['id']}")
                if job["state"] in ("done", "failed"):
                    break
                time.sleep(0.1)
            assert job["state"] == "done"
            assert job["counts"] == {"cached": 1, "ran": 1}

            # results flow back through the same listener, index-backed
            status, document = self._get(server.url + "/results?seed=2")
            assert status == 200
            assert document["count"] == 1
            assert document["rows"][0]["seed"] == 2

            _, listing = self._get(server.url + "/campaigns")
            assert [j["id"] for j in listing["jobs"]] == [job["id"]]

            # the daemon's own /status still answers beside the new routes
            status, document = self._get(server.url + "/status")
            assert document["kind"] == "repro.scheduler"

    def test_http_error_paths(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with CampaignScheduler(store) as scheduler, \
                MetricsServer(0, status=scheduler.status,
                              routes=scheduler.handle_route) as server:
            # malformed body
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                request = urllib.request.Request(
                    server.url + "/campaigns", data=b"not json",
                    method="POST")
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

            # inadmissible campaign: rejected, nothing queued
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(server.url + "/campaigns", {
                    "name": "bad", "base": tiny_spec().to_dict(),
                    "grid": {"declared_byzantine_workers": [5]}})
            assert excinfo.value.code == 400
            assert scheduler.jobs() == []

            # unknown job
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/campaigns/job-9999")
            assert excinfo.value.code == 404

            # bogus query filter surfaces the store's nearest-field hint
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/results?gradent_rule=%22median%22")
            assert excinfo.value.code == 400
            detail = json.loads(excinfo.value.read().decode("utf-8"))
            assert "nearest valid fields" in detail["error"]

            # paths the scheduler does not own still 404 through the base
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/nope")
            assert excinfo.value.code == 404
