"""Tests for the cluster configuration and its quorum arithmetic."""

import pytest

from repro.core import ClusterConfig


class TestValidation:
    def test_minimal_non_byzantine_cluster(self):
        config = ClusterConfig(num_servers=3, num_workers=3)
        assert config.model_quorum == 3
        assert config.gradient_quorum == 3

    def test_requires_3f_plus_3_servers(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_servers=5, num_workers=6, num_byzantine_servers=1)

    def test_requires_3f_plus_3_workers(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_servers=3, num_workers=8, num_byzantine_workers=2)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_servers=3, num_workers=3, num_byzantine_servers=-1)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_servers=0, num_workers=3)

    def test_model_quorum_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_servers=6, num_workers=6, num_byzantine_servers=1,
                          model_quorum=6)  # max is n - f = 5
        with pytest.raises(ValueError):
            ClusterConfig(num_servers=6, num_workers=6, num_byzantine_servers=1,
                          model_quorum=4)  # min is 2f + 3 = 5

    def test_gradient_quorum_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_servers=3, num_workers=18, num_byzantine_workers=5,
                          gradient_quorum=14)  # max is 13


class TestQuorumDefaults:
    def test_defaults_are_minimum_quorums(self):
        config = ClusterConfig(num_servers=9, num_workers=12,
                               num_byzantine_servers=2, num_byzantine_workers=3)
        assert config.model_quorum == 2 * 2 + 3
        assert config.gradient_quorum == 2 * 3 + 3

    def test_explicit_quorums_accepted_within_range(self):
        config = ClusterConfig(num_servers=9, num_workers=12,
                               num_byzantine_servers=1, num_byzantine_workers=1,
                               model_quorum=8, gradient_quorum=11)
        assert config.model_quorum == 8
        assert config.gradient_quorum == 11

    def test_paper_deployment_matches_section_5(self):
        """Section 5.1: 18 workers, 6 servers, up to 5/1 Byzantine."""
        config = ClusterConfig.paper_deployment()
        assert config.num_servers == 6
        assert config.num_workers == 18
        assert config.num_byzantine_servers == 1
        assert config.num_byzantine_workers == 5
        assert config.model_quorum == 5       # 2*1 + 3
        assert config.gradient_quorum == 13   # 2*5 + 3

    def test_byzantine_fractions_below_one_third(self):
        config = ClusterConfig.paper_deployment()
        assert config.byzantine_fraction_servers() <= 1.0 / 3.0
        assert config.byzantine_fraction_workers() <= 1.0 / 3.0


class TestNodeIdentifiers:
    def test_counts_of_id_lists(self):
        config = ClusterConfig(num_servers=6, num_workers=9,
                               num_byzantine_servers=1, num_byzantine_workers=2)
        assert len(config.server_ids()) == 6
        assert len(config.worker_ids()) == 9
        assert len(config.correct_server_ids()) == 5
        assert len(config.byzantine_server_ids()) == 1
        assert len(config.correct_worker_ids()) == 7
        assert len(config.byzantine_worker_ids()) == 2

    def test_ids_are_disjoint_and_prefixed(self):
        config = ClusterConfig(num_servers=3, num_workers=3)
        assert all(sid.startswith("ps/") for sid in config.server_ids())
        assert all(wid.startswith("worker/") for wid in config.worker_ids())
        assert not set(config.server_ids()) & set(config.worker_ids())

    def test_as_dict_round_trips_into_constructor(self):
        config = ClusterConfig(num_servers=6, num_workers=9,
                               num_byzantine_servers=1, num_byzantine_workers=2)
        rebuilt = ClusterConfig(**config.as_dict())
        assert rebuilt.model_quorum == config.model_quorum
        assert rebuilt.gradient_quorum == config.gradient_quorum
