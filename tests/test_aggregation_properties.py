"""Property-based tests (hypothesis) for the aggregation rules.

These encode the invariants the convergence proof relies on:

* the coordinate-wise median stays inside the coordinate-wise range of the
  correct inputs as long as they form a strict majority (Lemma 9.2.3's
  parallelotope argument);
* Multi-Krum's deviation from the honest cloud is bounded by a constant
  times the honest spread, no matter what the Byzantine inputs are
  (Lemma 9.2.2);
* all rules are permutation-invariant (message arrival order within the
  quorum must not matter);
* the arithmetic mean has no such protection (it is the vulnerable baseline).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.aggregation import (
    ArithmeticMean,
    CoordinateWiseMedian,
    MultiKrum,
    TrimmedMean,
    byzantine_resilience_report,
)
from repro.theory import multi_krum_deviation_ratio

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                          allow_infinity=False)


def correct_cloud(min_rows=3, max_rows=8, min_cols=1, max_cols=6):
    """Strategy producing an (n, d) array of bounded finite floats."""
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(min_rows, max_rows),
                        st.integers(min_cols, max_cols)),
        elements=finite_floats,
    )


class TestMedianProperties:
    @given(cloud=correct_cloud(min_rows=3))
    @settings(max_examples=60, deadline=None)
    def test_median_within_coordinatewise_range(self, cloud):
        out = CoordinateWiseMedian()(cloud)
        assert np.all(out >= cloud.min(axis=0) - 1e-9)
        assert np.all(out <= cloud.max(axis=0) + 1e-9)

    @given(cloud=correct_cloud(min_rows=5), scale=st.floats(1e3, 1e8))
    @settings(max_examples=60, deadline=None)
    def test_median_bounded_by_correct_inputs_under_minority_attack(self, cloud, scale):
        num_byzantine = (cloud.shape[0] - 1) // 2
        byzantine = np.full((num_byzantine, cloud.shape[1]), scale)
        out = CoordinateWiseMedian(num_byzantine=num_byzantine)(
            np.concatenate([cloud, byzantine]))
        assert np.all(out <= cloud.max(axis=0) + 1e-9)
        assert np.all(out >= cloud.min(axis=0) - 1e-9)

    @given(cloud=correct_cloud(min_rows=3), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_median_permutation_invariant(self, cloud, seed):
        rng = np.random.default_rng(seed)
        permuted = cloud[rng.permutation(cloud.shape[0])]
        assert np.allclose(CoordinateWiseMedian()(cloud),
                           CoordinateWiseMedian()(permuted))

    @given(cloud=correct_cloud(min_rows=3), shift=finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_median_translation_equivariant(self, cloud, shift):
        shifted = cloud + shift
        assert np.allclose(CoordinateWiseMedian()(shifted),
                           CoordinateWiseMedian()(cloud) + shift, atol=1e-6)


class TestMultiKrumProperties:
    @given(
        num_correct=st.integers(5, 12),
        dimension=st.integers(1, 8),
        num_byzantine=st.integers(1, 3),
        scale=st.floats(10.0, 1e6),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_deviation_lemma(self, num_correct, dimension, num_byzantine,
                                     scale, seed):
        """Lemma 9.2.2: deviation bounded by a constant times the honest spread."""
        if num_correct < 2 * num_byzantine + 3 - num_byzantine:
            num_correct = 2 * num_byzantine + 3
        rng = np.random.default_rng(seed)
        correct = rng.normal(0.0, 1.0, size=(num_correct, dimension))
        byzantine = rng.normal(0.0, scale, size=(num_byzantine, dimension))
        ratio = multi_krum_deviation_ratio(correct, byzantine,
                                           num_byzantine=num_byzantine)
        # The constant is architecture-independent; n, f <= 15 keeps it small.
        assert ratio < 2.0 * (num_correct + num_byzantine)

    @given(num_inputs=st.integers(5, 9), dimension=st.integers(1, 6),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariant(self, num_inputs, dimension, seed):
        # Continuous random clouds have no tied Krum scores (probability 0),
        # so the selected set — and hence the output — is permutation-invariant.
        rng = np.random.default_rng(seed)
        cloud = rng.normal(size=(num_inputs, dimension))
        permuted = cloud[rng.permutation(cloud.shape[0])]
        rule = MultiKrum(num_byzantine=1)
        assert np.allclose(rule(cloud), rule(permuted), atol=1e-9)

    @given(
        dimension=st.integers(1, 10),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_in_convex_hull_bounding_box_of_selected(self, dimension, seed):
        rng = np.random.default_rng(seed)
        cloud = rng.normal(size=(9, dimension))
        rule = MultiKrum(num_byzantine=2)
        out = rule(cloud)
        assert np.all(out >= cloud.min(axis=0) - 1e-9)
        assert np.all(out <= cloud.max(axis=0) + 1e-9)


class TestTrimmedMeanProperties:
    @given(cloud=correct_cloud(min_rows=5), scale=st.floats(1e3, 1e7))
    @settings(max_examples=40, deadline=None)
    def test_single_outlier_trimmed(self, cloud, scale):
        attacked = np.concatenate([cloud, np.full((1, cloud.shape[1]), scale)])
        out = TrimmedMean(num_byzantine=1)(attacked)
        assert np.all(out <= cloud.max(axis=0) + 1e-9)


class TestMeanVulnerability:
    @given(cloud=correct_cloud(min_rows=3), scale=st.floats(1e6, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_mean_leaves_correct_hull_under_attack(self, cloud, scale):
        """The vanilla baseline has breakdown point 0: one attacker suffices."""
        byzantine = np.full((1, cloud.shape[1]), scale)
        report = byzantine_resilience_report(ArithmeticMean(), cloud, byzantine)
        assert not report.within_correct_hull

    @given(cloud=correct_cloud(min_rows=5), scale=st.floats(1e6, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_median_stays_in_hull_where_mean_escapes(self, cloud, scale):
        byzantine = np.full((1, cloud.shape[1]), scale)
        median_report = byzantine_resilience_report(
            CoordinateWiseMedian(num_byzantine=1), cloud, byzantine)
        assert median_report.within_correct_hull
