"""Supervisor lifecycle tests: the edge paths of the process cluster.

The happy path (spawn → ready → run → done) is covered by the tier-1
equivalence suite; this file exercises the supervisor's failure machinery
through the ``ClusterOptions`` test seams — debug hooks that make a node
die before its readiness handshake or hang after it, address overrides
that provoke bind conflicts — and the respawn path of recover events.
"""

from __future__ import annotations

import os
import socket
import tempfile

import pytest

from repro.campaign.spec import ScenarioSpec
from repro.faults import FaultEvent, FaultSchedule
from repro.runtime.cluster import (
    ClusterOptions,
    Supervisor,
    SupervisorError,
    cluster_available,
    unix_sockets_available,
)

needs_sockets = pytest.mark.skipif(
    not cluster_available(), reason="host cannot bind sockets")


def small_spec(**overrides) -> ScenarioSpec:
    base = dict(name="cluster-edge", trainer="guanyu_threaded",
                num_workers=4, num_servers=3,
                declared_byzantine_workers=0, declared_byzantine_servers=0,
                model_quorum=3, gradient_quorum=4,
                gradient_rule="median", model_rule="median",
                num_steps=2, seed=9, quorum_timeout=30.0)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestConstruction:
    def test_rejects_non_threaded_trainers(self):
        with pytest.raises(ValueError, match="guanyu_threaded"):
            Supervisor(small_spec(trainer="guanyu", runtime=None))

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            Supervisor(small_spec(),
                       options=ClusterOptions(transport="carrier-pigeon"))

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError, match="num_steps"):
            Supervisor(small_spec(), num_steps=0)


@needs_sockets
@pytest.mark.timeout(180)
class TestEdgePaths:
    def test_node_dies_before_readiness(self):
        options = ClusterOptions(
            debug_hooks={"worker/2": {"die_before_ready": True}},
            shutdown_timeout=2.0)
        supervisor = Supervisor(small_spec(), options=options)
        with pytest.raises(SupervisorError, match="worker/2"):
            supervisor.run()
        node = supervisor.report()["nodes"]["worker/2"]
        assert node["state"] == "failed"
        assert node["exit_codes"] == [13]  # EXIT_DEBUG_DIED

    def test_address_already_bound(self, tmp_path):
        # pre-bind worker/0's listener address so its bind must fail
        if unix_sockets_available():
            path = str(tmp_path / "taken.sock")
            squatter = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            squatter.bind(path)
            address = {"family": "unix", "path": path}
        else:
            squatter = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            squatter.bind(("127.0.0.1", 0))
            address = {"family": "tcp", "host": "127.0.0.1",
                       "port": squatter.getsockname()[1]}
        squatter.listen(1)
        try:
            options = ClusterOptions(addresses={"worker/0": address},
                                     shutdown_timeout=2.0)
            supervisor = Supervisor(small_spec(), options=options)
            with pytest.raises(SupervisorError, match="worker/0"):
                supervisor.run()
            node = supervisor.report()["nodes"]["worker/0"]
            assert node["state"] == "failed"
            assert node["exit_codes"] == [11]  # EXIT_BIND_FAILED
        finally:
            squatter.close()

    def test_probe_timeout_escalates_to_kill(self):
        # worker/1 completes the readiness handshake, then never answers a
        # PING again: the supervisor must declare it hung and SIGKILL it
        options = ClusterOptions(
            debug_hooks={"worker/1": {"hang_after_ready": True}},
            probe_interval=0.2, probe_timeout=2.0, shutdown_timeout=2.0)
        supervisor = Supervisor(small_spec(), options=options)
        with pytest.raises(SupervisorError, match="worker/1"):
            supervisor.run()
        node = supervisor.report()["nodes"]["worker/1"]
        assert node["state"] == "probe-timeout"
        assert node["exit_codes"] == [-9]

    def test_respawn_after_recover(self):
        faults = FaultSchedule(events=[
            FaultEvent(step=1, kind="crash", nodes=["worker/1"]),
            FaultEvent(step=3, kind="recover", nodes=["worker/1"])])
        supervisor = Supervisor(small_spec(num_steps=4, faults=faults))
        history = supervisor.run()
        assert len(history.records) == 4
        node = supervisor.report()["nodes"]["worker/1"]
        assert node["state"] == "done"
        assert node["respawns"] == 1
        assert node["exit_codes"] == [-9, 0]
        # the killed incarnation's PID is really gone
        with pytest.raises(ProcessLookupError):
            os.kill(node["pids"][0], 0)

    def test_byzantine_node_cannot_be_respawned(self):
        # an attacking node's adversary rng state dies with its process;
        # respawning it would silently change the attack — refuse loudly
        # attacking nodes occupy the *last* ids: worker/5 of 6 here
        faults = FaultSchedule(events=[
            FaultEvent(step=1, kind="crash", nodes=["worker/5"]),
            FaultEvent(step=3, kind="recover", nodes=["worker/5"])])
        spec = small_spec(
            num_workers=6, declared_byzantine_workers=1, gradient_quorum=5,
            num_steps=4, faults=faults,
            worker_attack={"name": "sign_flip", "kwargs": {}})
        supervisor = Supervisor(spec,
                                options=ClusterOptions(shutdown_timeout=2.0))
        with pytest.raises(SupervisorError, match="[Bb]yzantine"):
            supervisor.run()

    def test_tcp_transport_runs(self):
        supervisor = Supervisor(small_spec(num_steps=1),
                                options=ClusterOptions(transport="tcp"))
        history = supervisor.run()
        assert len(history.records) == 1
        report = supervisor.report()
        assert report["transport"] == "tcp"
        assert all(node["state"] == "done"
                   for node in report["nodes"].values())
        assert all(node["address"]["family"] == "tcp"
                   for node in report["nodes"].values())


@needs_sockets
@pytest.mark.timeout(120)
class TestClusterAvailability:
    def test_probe_does_not_leak_temp_dirs(self):
        before = {entry for entry in os.listdir(tempfile.gettempdir())
                  if entry.startswith("repro-cluster-probe-")}
        assert cluster_available()
        after = {entry for entry in os.listdir(tempfile.gettempdir())
                 if entry.startswith("repro-cluster-probe-")}
        assert after == before
