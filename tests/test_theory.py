"""Tests for the theory module (contraction, alignment, bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.schedules import InverseTimeDecay
from repro.theory import (
    AlignmentProbe,
    alignment_cosine,
    estimate_contraction,
    geometric_learning_rate_sum,
    max_byzantine_servers,
    max_byzantine_workers,
    median_contraction_coefficient,
    multi_krum_deviation_ratio,
    optimal_asynchronous_breakdown,
)
from repro.theory.bounds import krum_kappa


class TestMedianContraction:
    def test_identical_quorums_have_zero_distance(self):
        rng = np.random.default_rng(0)
        cloud = rng.normal(size=(5, 10))
        assert median_contraction_coefficient(cloud, cloud) == 0.0

    def test_aligned_replicas_contract(self):
        """Lemma 9.2.3 in the aligned case (r_i = 0): ratio strictly below 1."""
        rng = np.random.default_rng(1)
        direction = rng.normal(size=50)
        direction /= np.linalg.norm(direction)
        scales_a = rng.normal(0, 1, size=6)
        scales_b = rng.normal(0, 1, size=6)
        cloud_a = scales_a[:, None] * direction[None, :]
        cloud_b = scales_b[:, None] * direction[None, :]
        ratio = median_contraction_coefficient(cloud_a, cloud_b)
        assert ratio < 1.0

    def test_byzantine_inputs_do_not_break_contraction(self):
        rng = np.random.default_rng(2)
        direction = rng.normal(size=30)
        direction /= np.linalg.norm(direction)
        cloud_a = rng.normal(0, 1, size=(7, 1)) * direction
        cloud_b = rng.normal(0, 1, size=(7, 1)) * direction
        byzantine = np.full((2, 30), 1e6)
        ratio = median_contraction_coefficient(cloud_a, cloud_b,
                                               byzantine_a=byzantine,
                                               byzantine_b=-byzantine)
        assert ratio < 1.0

    def test_estimate_contraction_below_one_in_expectation(self):
        m = estimate_contraction(num_correct=7, num_byzantine=2, dimension=20,
                                 num_trials=60, seed=0)
        assert 0.0 <= m < 1.0

    def test_dimension_plays_against_the_adversary(self):
        """Paper §1: higher dimension tightens the contraction."""
        low_d = estimate_contraction(num_correct=7, num_byzantine=2, dimension=2,
                                     num_trials=80, seed=1)
        high_d = estimate_contraction(num_correct=7, num_byzantine=2, dimension=200,
                                      num_trials=80, seed=1)
        assert high_d <= low_d + 0.05


class TestMultiKrumDeviation:
    def test_no_byzantine_deviation_is_small(self):
        rng = np.random.default_rng(3)
        correct = rng.normal(size=(8, 5))
        ratio = multi_krum_deviation_ratio(correct, None, num_byzantine=0)
        assert ratio < 1.0

    @given(scale=st.floats(10.0, 1e8), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_deviation_independent_of_attack_magnitude(self, scale, seed):
        """Lemma 9.2.2: the bound does not depend on the Byzantine values."""
        rng = np.random.default_rng(seed)
        correct = rng.normal(size=(9, 6))
        byzantine = rng.normal(0, scale, size=(2, 6))
        ratio = multi_krum_deviation_ratio(correct, byzantine, num_byzantine=2)
        assert ratio < 20.0


class TestAlignment:
    def test_perfectly_aligned_difference_vectors(self):
        base = np.zeros(10)
        direction = np.ones(10)
        vectors = [base, base + direction, base + 2 * direction]
        cos_phi, norms = alignment_cosine(vectors)
        assert cos_phi == pytest.approx(1.0)
        assert norms[0] >= norms[1]

    def test_orthogonal_difference_vectors(self):
        e0 = np.zeros(4); e0[0] = 1.0
        e1 = np.zeros(4); e1[1] = 1.0
        cos_phi, _ = alignment_cosine([np.zeros(4), 2 * e0, 2 * e1])
        assert cos_phi == pytest.approx(0.5, abs=0.51)  # dominated pairs include e0-e1

    def test_single_pair_returns_nan(self):
        cos_phi, norms = alignment_cosine([np.zeros(3), np.ones(3)])
        assert np.isnan(cos_phi)
        assert len(norms) == 1

    def test_probe_records_on_interval(self):
        probe = AlignmentProbe(interval=20)
        vectors = [np.zeros(5), np.ones(5), np.full(5, 2.0)]
        for step in range(0, 60):
            probe.maybe_record(step, vectors)
        assert len(probe.samples) == 3
        rows = probe.as_rows()
        assert rows[0][0] == 0 and rows[-1][0] == 40

    def test_probe_invalid_interval(self):
        with pytest.raises(ValueError):
            AlignmentProbe(interval=0)


class TestBounds:
    def test_lemma_921_sum_decays(self):
        """Numeric check of Lemma 9.2.1 with a 1/t learning-rate sequence."""
        schedule = InverseTimeDecay(initial=1.0, decay=1.0)
        short = geometric_learning_rate_sum([schedule(t) for t in range(50)], k=0.9)
        long = geometric_learning_rate_sum([schedule(t) for t in range(2000)], k=0.9)
        assert long < short
        assert long < 0.05

    def test_lemma_921_invalid_k(self):
        with pytest.raises(ValueError):
            geometric_learning_rate_sum([0.1], k=1.0)

    def test_optimal_asynchronous_breakdown_is_one_third(self):
        assert optimal_asynchronous_breakdown() == pytest.approx(1.0 / 3.0)

    def test_max_byzantine_counts_match_3f_plus_3(self):
        assert max_byzantine_servers(6) == 1
        assert max_byzantine_servers(8) == 1
        assert max_byzantine_servers(9) == 2
        assert max_byzantine_workers(18) == 5

    def test_max_byzantine_requires_three_nodes(self):
        with pytest.raises(ValueError):
            max_byzantine_servers(2)

    def test_paper_deployment_respects_one_third_bound(self):
        assert max_byzantine_workers(18) / 18 < optimal_asynchronous_breakdown() + 1e-9
        assert max_byzantine_servers(6) / 6 < optimal_asynchronous_breakdown() + 1e-9

    def test_krum_kappa_increases_with_f(self):
        assert krum_kappa(18, 5) > krum_kappa(18, 1)

    def test_krum_kappa_invalid_when_condition_violated(self):
        with pytest.raises(ValueError):
            krum_kappa(6, 2)
