"""Tests for the scenario campaign engine (spec, store, engine, resume)."""

import pytest

from repro.campaign import (
    AttackSpec,
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    build_trainer,
    execute_scenario,
    run_campaign,
)
from repro.byzantine import RandomGradientAttack
from repro.core import ClusterConfig, GuanYuTrainer
from repro.core.trainer import VanillaTrainer
from repro.experiments.common import (
    ExperimentScale,
    build_workload,
    make_model_factory,
    make_schedule,
)


def tiny_spec(**overrides) -> ScenarioSpec:
    """A scenario that trains in well under a second."""
    base = dict(name="tiny", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=4, eval_every=2, dataset_size=300,
                max_eval_samples=64)
    base.update(overrides)
    return ScenarioSpec(**base)


# --------------------------------------------------------------------------- #
# ScenarioSpec
# --------------------------------------------------------------------------- #
class TestScenarioSpec:
    def test_dict_round_trip(self):
        spec = tiny_spec(worker_attack=AttackSpec("sign_flip"),
                         server_attack={"name": "equivocation",
                                        "kwargs": {"magnitude": 9.0}})
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.server_attack.kwargs == {"magnitude": 9.0}

    def test_json_round_trip(self):
        spec = tiny_spec(gradient_quorum=5)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"name": "x", "warp_factor": 9})

    def test_hash_is_stable_and_content_addressed(self):
        assert tiny_spec().spec_hash() == tiny_spec().spec_hash()
        assert tiny_spec().spec_hash() != tiny_spec(seed=7).spec_hash()
        assert tiny_spec().spec_hash() != \
            tiny_spec(gradient_rule="median").spec_hash()

    def test_hash_ignores_the_pure_label(self):
        # Equal configurations share a cache entry however they are named.
        assert tiny_spec(name="a").spec_hash() == tiny_spec(name="b").spec_hash()

    def test_attacker_count_without_attack_rejected(self):
        with pytest.raises(ValueError, match="requires a worker_attack"):
            tiny_spec(num_attacking_workers=1).validate()
        with pytest.raises(ValueError, match="requires a server_attack"):
            tiny_spec(num_attacking_servers=1).validate()

    def test_negative_attacker_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            tiny_spec(worker_attack="sign_flip",
                      num_attacking_workers=-1).validate()

    def test_attack_coercion_from_string_and_dict(self):
        spec = tiny_spec(worker_attack="sign_flip")
        assert isinstance(spec.worker_attack, AttackSpec)
        assert spec.worker_attack.name == "sign_flip"

    def test_from_attack_round_trips_constructor_kwargs(self):
        attack = RandomGradientAttack(scale=42.0)
        spec = AttackSpec.from_attack(attack)
        assert spec.name == "random_gradient"
        assert spec.kwargs == {"scale": 42.0}
        rebuilt = spec.build()
        assert isinstance(rebuilt, RandomGradientAttack)
        assert rebuilt.scale == 42.0

    def test_from_attack_rejects_unregistered_attacks(self):
        from repro.byzantine.base import WorkerAttack

        class HomebrewAttack(WorkerAttack):
            name = "homebrew"

            def corrupt_gradient(self, context):
                return context.honest_value

        with pytest.raises(ValueError, match="not in the Byzantine registry"):
            AttackSpec.from_attack(HomebrewAttack())

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            tiny_spec().replace(warp_factor=9)

    def test_scale_round_trip(self):
        scale = ExperimentScale.small()
        spec = ScenarioSpec.from_scale(scale, name="s")
        assert spec.to_scale() == scale

    def test_resolved_attacker_counts_default_to_declared(self):
        spec = tiny_spec(worker_attack="sign_flip")
        assert spec.resolved_num_attacking_workers() == 1
        assert tiny_spec().resolved_num_attacking_workers() == 0
        assert tiny_spec(worker_attack="sign_flip",
                         num_attacking_workers=0) \
            .resolved_num_attacking_workers() == 0


class TestScenarioValidation:
    def test_valid_spec_passes(self):
        assert tiny_spec().validate() is not None

    def test_inadmissible_cluster_rejected(self):
        with pytest.raises(ValueError, match="3f"):
            tiny_spec(num_workers=5).validate()

    def test_unknown_rule_trainer_dataset_rejected(self):
        with pytest.raises(ValueError, match="aggregation rule"):
            tiny_spec(gradient_rule="averaging").validate()
        with pytest.raises(ValueError, match="trainer"):
            tiny_spec(trainer="horovod").validate()
        with pytest.raises(ValueError, match="dataset"):
            tiny_spec(dataset="imagenet").validate()

    def test_misspelled_attack_kwarg_is_a_value_error(self):
        bad = tiny_spec(worker_attack=AttackSpec("random_gradient",
                                                 {"magnitude": 5.0}))
        with pytest.raises(ValueError, match="invalid kwargs"):
            bad.validate()
        # ... and therefore expand(on_invalid="skip") can drop the cell.
        campaign = CampaignSpec(name="c", scenarios=[bad])
        assert campaign.expand(on_invalid="skip") == []

    def test_attack_role_mismatch_rejected(self):
        with pytest.raises(ValueError, match="server attack"):
            tiny_spec(worker_attack="equivocation").validate()
        with pytest.raises(ValueError, match="worker attack"):
            tiny_spec(server_attack="sign_flip").validate()

    def test_more_attackers_than_declared_rejected(self):
        with pytest.raises(ValueError, match="attacking workers"):
            tiny_spec(worker_attack="sign_flip",
                      num_attacking_workers=2).validate()

    def test_rule_minimum_inputs_vs_quorum(self):
        # Bulyan with f̄=1 needs 4f+3 = 7 inputs, but q̄ max is 6-1 = 5.
        with pytest.raises(ValueError, match="at least 7 inputs"):
            tiny_spec(gradient_rule="bulyan").validate()

    def test_vanilla_rejects_server_attack(self):
        with pytest.raises(ValueError, match="trusted"):
            tiny_spec(trainer="vanilla",
                      server_attack="equivocation").validate()

    def test_threaded_rejects_simulated_only_knobs_and_vice_versa(self):
        with pytest.raises(ValueError, match="real clock"):
            tiny_spec(trainer="guanyu_threaded",
                      delay_model="lognormal").validate()
        with pytest.raises(ValueError, match="jitter"):
            tiny_spec(jitter=0.01).validate()
        with pytest.raises(ValueError, match="quorum_timeout"):
            tiny_spec(quorum_timeout=5.0).validate()
        assert tiny_spec(trainer="guanyu_threaded", jitter=0.01,
                         quorum_timeout=5.0).validate()

    def test_vanilla_gradient_rule_needs_enough_workers(self):
        # Multi-Krum with f̄=2 needs 2f+3 = 7 inputs but only 6 workers reply.
        with pytest.raises(ValueError, match="at least 7 inputs"):
            tiny_spec(trainer="vanilla", declared_byzantine_workers=2).validate()

    def test_knobs_ignored_by_the_trainer_are_rejected(self):
        with pytest.raises(ValueError, match="always"):
            tiny_spec(trainer="single_server_krum",
                      gradient_rule="median").validate()
        with pytest.raises(ValueError, match="model_rule"):
            tiny_spec(trainer="vanilla", gradient_rule="mean",
                      model_rule="mean").validate()
        with pytest.raises(ValueError, match="external_communication"):
            tiny_spec(external_communication=True).validate()
        assert tiny_spec(trainer="vanilla", gradient_rule="mean",
                         external_communication=True).validate()


# --------------------------------------------------------------------------- #
# CampaignSpec expansion
# --------------------------------------------------------------------------- #
class TestCampaignExpansion:
    def test_grid_is_cartesian_product(self):
        campaign = CampaignSpec(name="c", base=tiny_spec(),
                                grid={"gradient_rule": ["multi_krum", "median"],
                                      "seed": [0, 1, 2]})
        expanded = campaign.expand()
        assert len(expanded) == 6
        assert expanded[0].name == "gradient_rule=multi_krum-seed=0"
        assert {spec.seed for spec in expanded} == {0, 1, 2}

    def test_dict_axis_values_are_multi_field_patches(self):
        campaign = CampaignSpec(
            name="c", base=tiny_spec(),
            grid={"attack": [
                {"_name": "clean"},
                {"_name": "flip", "worker_attack": {"name": "sign_flip",
                                                    "kwargs": {}}},
            ]})
        expanded = campaign.expand()
        assert [spec.name for spec in expanded] == ["clean", "flip"]
        assert expanded[0].worker_attack is None
        assert expanded[1].worker_attack.name == "sign_flip"

    def test_zip_axes_are_bundled_elementwise(self):
        campaign = CampaignSpec(
            name="c", base=tiny_spec(),
            zip_axes={"num_workers": [6, 9],
                      "declared_byzantine_workers": [1, 2]})
        expanded = campaign.expand()
        assert len(expanded) == 2
        assert (expanded[1].num_workers,
                expanded[1].declared_byzantine_workers) == (9, 2)

    def test_non_list_axis_value_rejected(self):
        campaign = CampaignSpec(name="c", base=tiny_spec(), grid={"seed": 5})
        with pytest.raises(ValueError, match="must map to a list"):
            campaign.expand()

    def test_zip_length_mismatch_rejected(self):
        campaign = CampaignSpec(name="c", base=tiny_spec(),
                                zip_axes={"seed": [0, 1], "num_steps": [4]})
        with pytest.raises(ValueError, match="share one length"):
            campaign.expand()

    def test_on_invalid_skip_drops_bad_cells(self):
        campaign = CampaignSpec(name="c", base=tiny_spec(),
                                grid={"num_workers": [5, 6]})
        with pytest.raises(ValueError):
            campaign.expand()
        survivors = campaign.expand(on_invalid="skip")
        assert [spec.num_workers for spec in survivors] == [6]

    def test_explicit_scenarios_and_grid_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            CampaignSpec(name="c", scenarios=[tiny_spec()],
                         grid={"seed": [0]})

    def test_duplicate_names_rejected(self):
        campaign = CampaignSpec(name="c", scenarios=[tiny_spec(), tiny_spec()])
        with pytest.raises(ValueError, match="duplicate"):
            campaign.expand()

    def test_campaign_json_round_trip(self):
        campaign = CampaignSpec(name="c", base=tiny_spec(),
                                grid={"seed": [0, 1]},
                                zip_axes={"batch_size": [8, 16]})
        restored = CampaignSpec.from_json(campaign.to_json())
        assert restored.to_dict() == campaign.to_dict()
        assert [s.name for s in restored.expand()] == \
            [s.name for s in campaign.expand()]


# --------------------------------------------------------------------------- #
# ResultStore
# --------------------------------------------------------------------------- #
class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        history = execute_scenario(spec)
        key = store.put(spec, history, duration_seconds=0.5)
        assert key == spec.spec_hash()
        assert store.contains(key) and key in store
        stored = store.get(key)
        assert stored.spec == spec
        assert stored.history.to_dict() == history.to_dict()
        assert stored.meta["duration_seconds"] == 0.5

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            ResultStore(tmp_path).get("0" * 64)

    def test_keys_len_delete(self, tmp_path):
        store = ResultStore(tmp_path)
        history = execute_scenario(tiny_spec())
        keys = {store.put(tiny_spec(seed=seed), history) for seed in (0, 1)}
        assert set(store.keys()) == keys and len(store) == 2
        assert store.delete(store.keys()[0])
        assert len(store) == 1
        assert not store.delete("f" * 64)

    def test_query_matches_spec_fields_and_attack_names(self, tmp_path):
        store = ResultStore(tmp_path)
        history = execute_scenario(tiny_spec())
        store.put(tiny_spec(gradient_rule="median"), history)
        store.put(tiny_spec(worker_attack="sign_flip"), history)
        assert len(store.query(gradient_rule="median")) == 1
        assert len(store.query(worker_attack="sign_flip")) == 1
        assert len(store.query(trainer="guanyu")) == 2
        with pytest.raises(KeyError):
            store.query(nonexistent_field=1)

    def test_query_rejects_unknown_fields_even_when_empty(self, tmp_path):
        with pytest.raises(KeyError, match="unknown scenario fields"):
            ResultStore(tmp_path).query(gradent_rule="median")

    def test_query_by_plain_name_hits_and_misses(self, tmp_path):
        """Attack/adversary filters take the plain string name.

        Callers never reach into the nested ``{"name": ..., "kwargs": ...}``
        spec payloads: ``query(adversary="collusion")`` matches regardless
        of the adversary's constructor arguments, and a name that is not in
        the store simply returns no results.
        """
        store = ResultStore(tmp_path)
        history = execute_scenario(tiny_spec())
        store.put(tiny_spec(name="adv",
                            adversary={"name": "collusion",
                                       "kwargs": {"attack": "sign_flip"}}),
                  history)
        store.put(tiny_spec(name="legacy-worker",
                            worker_attack="reversed_gradient"), history)
        store.put(tiny_spec(name="legacy-server", num_servers=6,
                            declared_byzantine_servers=1,
                            server_attack="stale_model"), history)
        # Hits, by plain name.
        assert [r.spec.name for r in store.query(adversary="collusion")] \
            == ["adv"]
        assert [r.spec.name
                for r in store.query(worker_attack="reversed_gradient")] \
            == ["legacy-worker"]
        assert [r.spec.name
                for r in store.query(server_attack="stale_model")] \
            == ["legacy-server"]
        # Misses: unknown names and absent fields return empty, not errors.
        assert store.query(adversary="omniscient_descent") == []
        assert store.query(worker_attack="sign_flip") == []
        assert store.query(server_attack="equivocation") == []
        # Filters compose with ordinary scalar fields.
        assert len(store.query(adversary="collusion",
                               trainer="guanyu")) == 1
        assert store.query(adversary="collusion", seed=999) == []

    def test_summary_rows_include_adversary(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec(adversary="collusion")
        store.put(spec, execute_scenario(spec))
        assert store.summary_rows()[0]["adversary"] == "collusion"

    def test_summary_rows_render(self, tmp_path):
        from repro.plotting import format_table
        store = ResultStore(tmp_path)
        store.put(tiny_spec(), execute_scenario(tiny_spec()))
        rows = store.summary_rows()
        assert rows[0]["scenario"] == "tiny"
        assert "final_accuracy" in format_table(rows)


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
class TestEngine:
    def test_matches_directly_built_trainer(self):
        """The engine reproduces a hand-built GuanYuTrainer bit for bit."""
        spec = tiny_spec(gradient_rule="median",
                         worker_attack=AttackSpec("random_gradient",
                                                  {"scale": 100.0}))
        engine_history = execute_scenario(spec)

        scale = spec.to_scale()
        train, test, in_features, num_classes = build_workload(scale)
        trainer = GuanYuTrainer(
            config=ClusterConfig(num_servers=3, num_workers=6,
                                 num_byzantine_workers=1),
            model_fn=make_model_factory(scale, in_features, num_classes),
            train_dataset=train, test_dataset=test, batch_size=spec.batch_size,
            schedule=make_schedule(scale), seed=spec.seed,
            cost_num_parameters=spec.billed_parameters,
            gradient_rule_name="median",
            worker_attack=RandomGradientAttack(scale=100.0),
            num_attacking_workers=1, label=spec.name)
        manual_history = trainer.run(spec.num_steps, eval_every=spec.eval_every,
                                     max_eval_samples=spec.max_eval_samples)
        assert engine_history.to_dict() == manual_history.to_dict()

    def test_build_trainer_dispatch(self):
        assert isinstance(build_trainer(tiny_spec()), GuanYuTrainer)
        assert isinstance(build_trainer(tiny_spec(trainer="vanilla",
                                                  gradient_rule="mean")),
                          VanillaTrainer)

    def test_vanilla_robust_rule_is_sized_for_declared_byzantine(self):
        trainer = build_trainer(tiny_spec(trainer="vanilla"))
        assert trainer.gradient_rule.name == "multi_krum"
        assert trainer.gradient_rule.num_byzantine == 1

    def test_serial_and_parallel_results_agree(self):
        campaign = CampaignSpec(name="c", base=tiny_spec(),
                                grid={"seed": [0, 1, 2]})
        serial = run_campaign(campaign)
        parallel = run_campaign(campaign, processes=2)
        assert serial.counts() == {"ran": 3, "cached": 0, "failed": 0}
        assert {name: history.to_dict()
                for name, history in serial.histories().items()} == \
               {name: history.to_dict()
                for name, history in parallel.histories().items()}

    def test_failure_isolation(self):
        # label_flip with num_classes=10 produces out-of-range labels on the
        # 4-class blobs task: a genuine runtime failure, isolated per scenario.
        good = tiny_spec(name="good")
        bad = tiny_spec(name="bad",
                        worker_attack=AttackSpec("label_flip",
                                                 {"num_classes": 10}))
        result = run_campaign([good, bad])
        assert result.counts() == {"ran": 1, "cached": 0, "failed": 1}
        failed = result.failures()[0]
        assert failed.spec.name == "bad" and failed.error
        assert "Traceback" in failed.traceback
        assert "good" in result.histories() and "bad" not in result.histories()
        with pytest.raises(RuntimeError, match="bad"):
            result.raise_on_failure()

    def test_scenario_list_with_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_campaign([tiny_spec(seed=0), tiny_spec(seed=1)])

    def test_progress_callback_sees_every_scenario(self):
        seen = []
        campaign = CampaignSpec(name="c", base=tiny_spec(),
                                grid={"seed": [0, 1]})
        run_campaign(campaign, progress=lambda o, done, total:
                     seen.append((o.spec.name, o.status, done, total)))
        assert len(seen) == 2
        assert seen[-1][2:] == (2, 2)

    def test_threaded_trainer_scenario(self, tmp_path):
        spec = tiny_spec(trainer="guanyu_threaded", num_steps=3,
                         quorum_timeout=30.0)
        history = execute_scenario(spec)
        assert len(history) == 3
        assert history.label == spec.name


class TestCampaignResume:
    """Satellite: an interrupted campaign resumes from the result store."""

    def _campaign(self):
        return CampaignSpec(
            name="resume", base=tiny_spec(),
            grid={"gradient_rule": ["multi_krum", "median"], "seed": [0, 1]})

    def test_preseeded_store_skips_cached_scenarios(self, tmp_path):
        campaign = self._campaign()
        fresh_store = ResultStore(tmp_path / "fresh")
        fresh = run_campaign(campaign, store=fresh_store)
        assert fresh.counts() == {"ran": 4, "cached": 0, "failed": 0}

        # Simulate a campaign killed after two scenarios: pre-seed a new
        # store with a subset of the fresh results.
        partial_store = ResultStore(tmp_path / "partial")
        interrupted = fresh.outcomes[:2]
        for outcome in interrupted:
            partial_store.put(outcome.spec, outcome.history)

        resumed = run_campaign(campaign, store=partial_store)
        assert resumed.counts() == {"ran": 2, "cached": 2, "failed": 0}
        cached_names = {outcome.spec.name for outcome in resumed.outcomes
                        if outcome.status == "cached"}
        assert cached_names == {outcome.spec.name for outcome in interrupted}

        # The resumed campaign's results are identical to the fresh run's.
        assert {name: history.to_dict()
                for name, history in resumed.histories().items()} == \
               {name: history.to_dict()
                for name, history in fresh.histories().items()}
        # ... and the store now holds every scenario for next time.
        rerun = run_campaign(campaign, store=partial_store)
        assert rerun.counts() == {"ran": 0, "cached": 4, "failed": 0}

    def test_cache_is_shared_across_scenario_names(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_campaign([tiny_spec(name="harness-label")], store=store)
        assert first.counts()["ran"] == 1
        second = run_campaign([tiny_spec(name="sweep-label")], store=store)
        assert second.counts() == {"ran": 0, "cached": 1, "failed": 0}
        assert second.histories()["sweep-label"].label == "sweep-label"

    def test_equal_configs_within_one_campaign_train_once(self):
        result = run_campaign([tiny_spec(name="a"), tiny_spec(name="b")])
        assert result.counts() == {"ran": 1, "cached": 1, "failed": 0}
        histories = result.histories()
        assert histories["a"].label == "a" and histories["b"].label == "b"
        assert histories["a"].to_dict()["records"] == \
            histories["b"].to_dict()["records"]
