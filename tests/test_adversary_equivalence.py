"""Cross-runtime equivalence of the adversary engine.

Two layers:

* **end-to-end** — a scenario with a stateful adversary produces
  bit-identical histories whether executed sequentially
  (:class:`GuanYuTrainer`) or on the batched multi-replica runtime
  (:mod:`repro.batch`), for every adversary family;
* **engine-level** — the same adversary produces bit-identical corruption
  when driven through the three runtime wirings: context-carried peers
  (sequential), per-lane replay (batched) and the threaded observation
  board fed from racing threads.  Full threaded *trajectories* are
  wall-clock nondeterministic by design (quorums select whichever messages
  arrive first), so the contract — documented in ``docs/adversaries.md`` —
  is determinism of the corruption as a function of the observation, which
  is what these tests pin down.
"""

import threading

import numpy as np
import pytest

from repro.adversary import AdversaryCoordinator, get_adversary, make_binding
from repro.batch import run_batched_scenarios
from repro.byzantine.base import AttackContext
from repro.campaign.engine import execute_scenario
from repro.campaign.spec import ScenarioSpec
from repro.runtime.threads import ThreadedClusterRuntime

ADVERSARY_SPECS = [
    {"name": "omniscient_descent", "kwargs": {"num_amplitudes": 4}},
    {"name": "collusion", "kwargs": {"attack": "sign_flip"}},
    {"name": "sleeper", "kwargs": {"wake_step": 2, "inner": "collusion"}},
    {"name": "oscillating", "kwargs": {"period": 2, "start_active": True}},
    {"name": "little_is_enough", "kwargs": {}},  # wrapped legacy attack
]


def _specs(adversary, seeds=(11, 12)):
    return [ScenarioSpec(name=f"{adversary['name']}-{seed}",
                         adversary=dict(adversary), num_steps=6,
                         dataset_size=240, seed=seed)
            for seed in seeds]


class TestSequentialVsBatched:
    @pytest.mark.parametrize("adversary", ADVERSARY_SPECS,
                             ids=lambda a: a["name"])
    def test_histories_bit_identical(self, adversary):
        specs = _specs(adversary)
        sequential = [execute_scenario(spec.replace()) for spec in specs]
        batched = run_batched_scenarios([spec.replace() for spec in specs])
        for seq_history, bat_history in zip(sequential, batched):
            assert seq_history.to_dict() == bat_history.to_dict()

    def test_adversary_actually_changes_training(self):
        honest = execute_scenario(ScenarioSpec(name="h", num_steps=6,
                                               dataset_size=240, seed=11))
        attacked = execute_scenario(_specs(
            {"name": "omniscient_descent", "kwargs": {}}, seeds=(11,))[0])
        assert honest.to_dict() != attacked.to_dict()


def _coordinator(mode_seed=5):
    adversary = get_adversary("collusion", attack="little_is_enough")
    worker_ids = [f"worker/{i}" for i in range(7)]
    binding = make_binding(
        adversary, seed=mode_seed, worker_ids=worker_ids,
        server_ids=[f"ps/{i}" for i in range(3)],
        num_attacking_workers=2, num_attacking_servers=0,
        gradient_rule_name="median", declared_byzantine_workers=2,
        declared_byzantine_servers=0, gradient_quorum=7, model_quorum=3)
    return adversary, binding, AdversaryCoordinator(adversary, binding)


def _honest_gradients(step, dimension=5):
    rng = np.random.default_rng(1000 + step)
    return [rng.normal(size=dimension) for _ in range(5)]


class TestThreeWiringsEmitIdenticalCorruption:
    def test_context_board_and_replay_agree(self):
        steps = range(4)
        # Wiring 1: sequential/batched style — peers inside the context.
        _, binding, sequential = _coordinator()
        by_context = {
            step: sequential.worker_gradient(
                "worker/6", AttackContext(step=step,
                                          honest_value=np.zeros(5),
                                          peer_values=_honest_gradients(step)))
            for step in steps}

        # Wiring 2: threaded style — observation board fed from racing
        # threads, corruption queried from two Byzantine node threads.
        _, binding, threaded = _coordinator()
        threaded.enable_board(lambda step: binding.honest_workers(),
                              timeout=5.0)
        by_board = {}
        board_lock = threading.Lock()

        def byzantine(step, node_id):
            value = threaded.worker_gradient(
                node_id, AttackContext(step=step, honest_value=np.zeros(5)))
            with board_lock:
                by_board[(step, node_id)] = value

        for step in steps:
            queries = [threading.Thread(target=byzantine,
                                        args=(step, node_id))
                       for node_id in ("worker/5", "worker/6")]
            for thread in queries:
                thread.start()
            publishers = []
            for index, worker_id in enumerate(binding.honest_workers()):
                publisher = threading.Thread(
                    target=threaded.publish,
                    args=(worker_id, step, _honest_gradients(step)[index]))
                publishers.append(publisher)
                publisher.start()
            for thread in [*queries, *publishers]:
                thread.join(timeout=5.0)
                assert not thread.is_alive()

        # Wiring 3: batched-lane style — a fresh coordinator replayed in
        # sequential order, per-recipient calls sharing the cached plan.
        _, _, lane = _coordinator()
        by_lane = {}
        for step in steps:
            for recipient in ("ps/0", "ps/1", "ps/2"):
                value = lane.worker_gradient(
                    "worker/6", AttackContext(
                        step=step, honest_value=np.zeros(5),
                        peer_values=_honest_gradients(step),
                        recipient=recipient))
                by_lane.setdefault(step, value)
                np.testing.assert_array_equal(by_lane[step], value)

        for step in steps:
            np.testing.assert_array_equal(by_context[step],
                                          by_board[(step, "worker/6")])
            np.testing.assert_array_equal(by_context[step],
                                          by_board[(step, "worker/5")])
            np.testing.assert_array_equal(by_context[step], by_lane[step])


class TestThreadedRuntime:
    def _runtime(self, adversary_name, **adversary_kwargs):
        from repro.experiments.common import (
            ExperimentScale,
            build_workload,
            make_model_factory,
        )
        from repro.core.config import ClusterConfig
        from repro.nn.schedules import ConstantSchedule

        scale = ExperimentScale.small()
        scale.num_workers, scale.num_servers = 6, 6
        scale.declared_byzantine_workers = 1
        scale.dataset_size = 240
        train, _, in_features, num_classes = build_workload(scale)
        config = ClusterConfig(num_servers=6, num_workers=6,
                               num_byzantine_servers=1,
                               num_byzantine_workers=1)
        return ThreadedClusterRuntime(
            config=config,
            model_fn=make_model_factory(scale, in_features, num_classes),
            train_dataset=train, batch_size=8,
            schedule=ConstantSchedule(0.05),
            adversary=get_adversary(adversary_name, **adversary_kwargs),
            num_attacking_workers=1, quorum_timeout=30.0, seed=3)

    def test_observing_adversary_runs_to_completion(self):
        runtime = self._runtime("collusion")
        history = runtime.run(4)
        assert len(history.records) == 4
        losses = [record.train_loss for record in history.records]
        assert all(loss is not None and np.isfinite(loss) for loss in losses)
        assert history.config["adversary"] == "collusion"

    def test_stateless_adversary_runs_without_board(self):
        runtime = self._runtime("sign_flip")
        assert runtime.adversary_coordinator is not None
        assert runtime._observation_board is None
        history = runtime.run(3)
        assert len(history.records) == 3
        # Nobody reads the board for a per-call adversary, so honest
        # workers must not have accumulated gradient copies into it.
        assert runtime.adversary_coordinator._board == {}

    def test_adversary_and_legacy_attacks_are_mutually_exclusive(self):
        from repro.byzantine import SignFlipAttack

        with pytest.raises(ValueError, match="not both"):
            runtime = self._runtime("collusion")
            ThreadedClusterRuntime(
                config=runtime.config, model_fn=lambda: None,
                train_dataset=None, worker_attack=SignFlipAttack(),
                adversary=get_adversary("collusion"))


class TestSleeperTiming:
    def test_sleeper_matches_dormant_run_until_wake_step(self):
        # The comparison baseline is a sleeper that never wakes (same
        # Byzantine node placement and covert-channel timing, zero
        # corruption), so any divergence is the wake event itself.
        base = ScenarioSpec(name="dormant", num_steps=6, dataset_size=240,
                            seed=21,
                            adversary={"name": "sleeper",
                                       "kwargs": {"wake_step": 100,
                                                  "inner": "collusion"}})
        sleeper = base.replace(
            name="sleeper",
            adversary={"name": "sleeper",
                       "kwargs": {"wake_step": 3, "inner": "collusion"}})
        dormant_losses = [r.train_loss
                          for r in execute_scenario(base).records]
        sleeper_losses = [r.train_loss
                          for r in execute_scenario(sleeper).records]
        # Corruption first lands in the parameters used at step wake+1, so
        # the loss trajectories agree up to and including the wake step.
        assert sleeper_losses[:4] == dormant_losses[:4]
        assert sleeper_losses[4:] != dormant_losses[4:]
