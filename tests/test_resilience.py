"""Tests: fault schedules in campaign specs + the resilience harness."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    execute_scenario,
    run_campaign,
)
from repro.experiments.resilience import (
    run_crash_quorum_study,
    run_partition_heal_study,
    schedule_for_crashes,
)
from repro.experiments.common import ExperimentScale
from repro.faults import FaultSchedule

FAULTS = {"events": [
    {"step": 3, "kind": "crash", "nodes": ["ps/2"]},
    {"step": 7, "kind": "recover", "nodes": ["ps/2"]},
]}


def _base(**overrides) -> ScenarioSpec:
    defaults = dict(name="faulted", trainer="guanyu", num_workers=6,
                    num_servers=6, declared_byzantine_workers=1,
                    declared_byzantine_servers=0, num_steps=10,
                    eval_every=5, dataset_size=300, faults=FAULTS)
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestScenarioSpecFaults:
    def test_faults_coerced_from_dict(self):
        spec = _base()
        assert isinstance(spec.faults, FaultSchedule)
        assert spec.faults.events[0].kind == "crash"

    def test_empty_schedule_normalises_to_none(self):
        spec = _base(faults={"events": []})
        assert spec.faults is None

    def test_json_round_trip_preserves_hash(self):
        spec = _base()
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.spec_hash() == spec.spec_hash()
        assert restored.faults.to_dict() == spec.faults.to_dict()

    def test_hash_changes_iff_schedule_changes(self):
        spec = _base()
        plain = spec.replace(faults=None)
        # absent == empty schedule
        assert plain.spec_hash() == spec.replace(faults={"events": []}).spec_hash()
        # any schedule difference re-addresses the spec
        assert plain.spec_hash() != spec.spec_hash()
        moved = {"events": [dict(FAULTS["events"][0], step=4),
                            FAULTS["events"][1]]}
        assert spec.replace(faults=moved).spec_hash() != spec.spec_hash()
        # a faults-free spec keeps its pre-fault-engine address
        payload = json.loads(plain.to_json())
        assert payload["faults"] is None

    def test_validation_requires_guanyu_trainer(self):
        with pytest.raises(ValueError, match="trusted server"):
            _base(trainer="vanilla", declared_byzantine_servers=0,
                  num_servers=6).validate()

    def test_validation_checks_cluster_node_ids(self):
        bad = {"events": [{"step": 1, "kind": "crash", "nodes": ["ps/77"]}]}
        with pytest.raises(ValueError, match="unknown nodes"):
            _base(faults=bad).validate()

    def test_single_spec_runs_under_both_runtimes(self):
        """Acceptance: one spec JSON (crash at k, heal at m) under both
        trainers completes training."""
        schedule = {"events": [
            {"step": 3, "kind": "crash", "nodes": ["ps/5"]},
            {"step": 7, "kind": "recover", "nodes": ["ps/5"]},
            {"step": 4, "kind": "partition",
             "groups": [["ps/0"], ["ps/1", "ps/2", "ps/3", "ps/4"]],
             "label": "cut"},
            {"step": 8, "kind": "heal", "label": "cut"},
        ]}
        text = _base(faults=schedule).to_json()
        for trainer in ("guanyu", "guanyu_threaded"):
            spec = ScenarioSpec.from_json(text).replace(
                trainer=trainer, name=f"both-{trainer}")
            history = execute_scenario(spec)
            assert len(history) == spec.num_steps


class TestFaultSweeps:
    def test_grid_axis_over_fault_schedules(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = CampaignSpec(
            name="fault-grid",
            base=_base(faults=None, num_steps=6),
            grid={"faults": [
                {"_name": "baseline", "faults": None},
                {"_name": "crash", "faults": FAULTS},
            ]})
        scenarios = campaign.expand()
        assert {spec.name for spec in scenarios} == {"baseline", "crash"}
        assert len({spec.spec_hash() for spec in scenarios}) == 2
        result = run_campaign(campaign, store=store)
        assert not result.failures()
        # re-run: both cells served from cache
        again = run_campaign(campaign, store=store)
        assert again.counts() == {"ran": 0, "cached": 2, "failed": 0}

    def test_store_summary_counts_fault_events(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign([_base(num_steps=4)], store=store)
        (row,) = store.summary_rows()
        assert row["fault_events"] == 2


class TestResilienceHarness:
    @pytest.fixture(scope="class")
    def tiny_scale(self):
        return ExperimentScale(num_workers=6, num_servers=6,
                               declared_byzantine_workers=1,
                               declared_byzantine_servers=0, num_steps=9,
                               eval_every=3, batch_size=16, dataset="blobs",
                               model="softmax", dataset_size=300)

    def test_schedule_for_crashes_targets_last_servers(self):
        spec = _base()
        schedule = schedule_for_crashes(spec, 2, 3, 7)
        assert schedule.crashed_nodes() == ["ps/4", "ps/5"]
        assert schedule_for_crashes(spec, 0, 3, 7) is None
        with pytest.raises(ValueError):
            schedule_for_crashes(spec, 99, 3, 7)

    def test_crash_quorum_study_shows_liveness_boundary(self, tiny_scale,
                                                        tmp_path):
        store = ResultStore(tmp_path / "store")
        rows, histories = run_crash_quorum_study(
            scale=tiny_scale, crash_counts=(0, 2), quorum_sizes=(3, 5),
            crash_step=3, recover_step=6, store=store)
        assert len(rows) == 4
        by_cell = {(row["model_quorum"], row["crashed_servers"]): row
                   for row in rows}
        assert all(row["completed"] for row in rows)
        # q=3: 2 crashes of 6 leave 4 >= 3 senders — no stall.
        assert by_cell[(3, 2)]["stalled_steps"] == 0
        # q=5: 2 crashes leave 4 < 5 — the window [3, 6) stalls.
        assert by_cell[(5, 2)]["stalled_steps"] == 3
        assert by_cell[(5, 0)]["stalled_steps"] == 0

        # Reproduced from the store: second run is pure cache.
        rows2, _ = run_crash_quorum_study(
            scale=tiny_scale, crash_counts=(0, 2), quorum_sizes=(3, 5),
            crash_step=3, recover_step=6, store=store)
        assert rows2 == rows

    def test_partition_heal_study_recontracts(self, tiny_scale):
        rows, histories = run_partition_heal_study(
            scale=tiny_scale, partition_step=2, heal_steps=(5, 8))
        assert [row["heal_step"] for row in rows] == [5, 8]
        for row in rows:
            assert row["spread_before_heal"] > row["final_spread"]
        # the longer the partition, the further the replica drifts
        assert rows[1]["spread_before_heal"] > rows[0]["spread_before_heal"]
