"""Tier-1 guarantee: the batched runtime is bit-identical per seed.

Every scenario family the batched runtime claims to support is executed
both ways — one vectorised multi-replica run vs per-seed sequential
simulations — and the **entire** serialised histories must be equal:
losses, accuracies, simulated clocks, phase durations, server spreads and
config metadata.  Nothing is compared with a tolerance; ``==`` on the
``to_dict()`` forms is the whole assertion.
"""

import numpy as np
import pytest

from repro.batch import (
    BatchedGuanYuTrainer,
    BatchingUnsupported,
    run_batched_scenarios,
    spec_supports_batching,
)
from repro.campaign.engine import execute_scenario, run_campaign
from repro.campaign.spec import AttackSpec, ScenarioSpec
from repro.campaign.store import ResultStore
from repro.faults import FaultEvent, FaultSchedule

SEEDS = (0, 1, 7)


def _small(**overrides):
    """A quick scenario (seconds-scale test budget)."""
    base = dict(num_steps=8, eval_every=3, dataset_size=400,
                max_eval_samples=64)
    base.update(overrides)
    return base


def assert_bit_identical(specs):
    batched = run_batched_scenarios(specs)
    sequential = [execute_scenario(spec) for spec in specs]
    for batched_history, sequential_history in zip(batched, sequential):
        assert batched_history.to_dict() == sequential_history.to_dict()
    return batched


class TestEquivalence:
    def test_plain_softmax(self):
        assert_bit_identical([ScenarioSpec(name=f"s{seed}", seed=seed,
                                           **_small()) for seed in SEEDS])

    def test_mlp_model(self):
        assert_bit_identical([ScenarioSpec(name=f"m{seed}", seed=seed,
                                           model="mlp", **_small())
                              for seed in SEEDS])

    def test_worker_attack_with_rng(self):
        assert_bit_identical([
            ScenarioSpec(name=f"w{seed}", seed=seed,
                         worker_attack="random_gradient", **_small())
            for seed in SEEDS])

    def test_omniscient_worker_attack(self):
        assert_bit_identical([
            ScenarioSpec(name=f"l{seed}", seed=seed,
                         worker_attack="little_is_enough", **_small())
            for seed in SEEDS])

    def test_equivocating_server_attack(self):
        assert_bit_identical([
            ScenarioSpec(name=f"e{seed}", seed=seed,
                         server_attack="equivocation", **_small())
            for seed in SEEDS])

    def test_silent_server_attack(self):
        assert_bit_identical([
            ScenarioSpec(name=f"q{seed}", seed=seed,
                         server_attack="silent_server", **_small())
            for seed in SEEDS])

    def test_label_flip_poisoning(self):
        assert_bit_identical([
            ScenarioSpec(name=f"p{seed}", seed=seed,
                         worker_attack=AttackSpec("label_flip",
                                                  {"num_classes": 4}),
                         **_small()) for seed in SEEDS])

    def test_alternate_rules_and_delay_model(self):
        assert_bit_identical([
            ScenarioSpec(name=f"k{seed}", seed=seed, gradient_rule="krum",
                         delay_model="lognormal",
                         worker_attack="sign_flip", **_small())
            for seed in SEEDS])

    def test_crash_recover_fault_schedule(self):
        schedule = FaultSchedule(events=[
            FaultEvent(step=2, kind="crash", nodes=["ps/1"]),
            FaultEvent(step=5, kind="recover", nodes=["ps/1"]),
            FaultEvent(step=1, kind="slowdown", nodes=["worker/2"],
                       factor=4.0),
            FaultEvent(step=6, kind="clear"),
        ])
        assert_bit_identical([
            ScenarioSpec(name=f"f{seed}", seed=seed,
                         faults=schedule.to_dict(), **_small())
            for seed in SEEDS])

    def test_per_replica_drop_and_duplicate_decisions(self):
        schedule = FaultSchedule(drop_rate=0.002, duplicate_rate=0.05)
        assert_bit_identical([
            ScenarioSpec(name=f"d{seed}", seed=seed,
                         faults=schedule.to_dict(), **_small())
            for seed in SEEDS])

    def test_partition_with_gated_attack(self):
        schedule = FaultSchedule(events=[
            FaultEvent(step=2, kind="partition", label="cut",
                       groups=[["ps/0"],
                               ["ps/1", "ps/2", "ps/3", "ps/4", "ps/5"]]),
            FaultEvent(step=5, kind="heal", label="cut"),
            FaultEvent(step=3, kind="activate_attack", nodes=["worker/8"]),
        ])
        assert_bit_identical([
            ScenarioSpec(name=f"g{seed}", seed=seed,
                         worker_attack="reversed_gradient",
                         num_attacking_workers=1,
                         faults=schedule.to_dict(), **_small())
            for seed in SEEDS])


class TestFailureParity:
    def test_quorum_starvation_raises_in_both_runtimes(self):
        schedule = FaultSchedule(drop_rate=0.05)
        spec = ScenarioSpec(name="starved", seed=0,
                            faults=schedule.to_dict(), **_small(num_steps=14))
        with pytest.raises(RuntimeError):
            execute_scenario(spec)
        with pytest.raises(RuntimeError):
            run_batched_scenarios([spec])


class TestEnvelope:
    def test_supports_batching_predicate(self):
        assert spec_supports_batching(ScenarioSpec(model="softmax"))
        assert spec_supports_batching(ScenarioSpec(model="mlp"))
        assert not spec_supports_batching(ScenarioSpec(model="small_cnn"))
        assert not spec_supports_batching(
            ScenarioSpec(trainer="vanilla", num_workers=4))

    def test_unsupported_model_raises(self):
        specs = [ScenarioSpec(name=f"c{seed}", seed=seed, model="small_cnn",
                              dataset="images", **_small())
                 for seed in (0, 1)]
        with pytest.raises(BatchingUnsupported):
            BatchedGuanYuTrainer(specs)

    def test_specs_differing_beyond_seed_rejected(self):
        specs = [ScenarioSpec(name="a", seed=0, **_small()),
                 ScenarioSpec(name="b", seed=1, batch_size=8, **_small())]
        with pytest.raises(ValueError, match="only in seed"):
            BatchedGuanYuTrainer(specs)

    def test_empty_spec_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedGuanYuTrainer([])

    def test_batch_group_hash_ignores_name_and_seed_only(self):
        base = ScenarioSpec(name="a", seed=0, **_small())
        assert base.batch_group_hash() == \
            base.replace(name="z", seed=99).batch_group_hash()
        assert base.batch_group_hash() != \
            base.replace(gradient_rule="median").batch_group_hash()
        # spec_hash (the store address) still distinguishes seeds
        assert base.spec_hash() != base.replace(seed=99).spec_hash()


class TestEngineRouting:
    def _seed_specs(self, count=3, **overrides):
        return [ScenarioSpec(name=f"seed{seed}", seed=seed,
                             **_small(**overrides))
                for seed in range(count)]

    def test_campaign_routes_seed_axis_to_batched_runtime(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = self._seed_specs()
        result = run_campaign(specs, store=store, batch_seeds=True)
        assert result.counts() == {"ran": 3, "cached": 0, "failed": 0}
        assert all(outcome.batched for outcome in result.outcomes)
        # stored under the unchanged per-scenario content addresses
        for spec in specs:
            stored = store.get(spec.spec_hash())
            assert stored.history.to_dict() == \
                execute_scenario(spec).to_dict()

    def test_batched_store_entries_resume_a_sequential_campaign(self,
                                                                tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = self._seed_specs()
        run_campaign(specs, store=store, batch_seeds=True)
        rerun = run_campaign(specs, store=store, batch_seeds=False)
        assert rerun.counts() == {"ran": 0, "cached": 3, "failed": 0}

    def test_mixed_campaign_batches_only_seed_groups(self):
        specs = self._seed_specs(count=2)
        specs.append(ScenarioSpec(name="loner", seed=5, gradient_rule="mean",
                                  **_small()))
        result = run_campaign(specs, batch_seeds=True)
        by_name = {outcome.spec.name: outcome for outcome in result.outcomes}
        assert by_name["seed0"].batched and by_name["seed1"].batched
        assert not by_name["loner"].batched
        assert result.counts()["failed"] == 0

    def test_unbatchable_scenarios_fall_back_to_sequential(self):
        specs = [ScenarioSpec(name=f"v{seed}", seed=seed, trainer="vanilla",
                              num_workers=4, gradient_rule="mean",
                              declared_byzantine_workers=0, **_small())
                 for seed in (0, 1)]
        result = run_campaign(specs, batch_seeds=True)
        assert result.counts()["failed"] == 0
        assert not any(outcome.batched for outcome in result.outcomes)

    def test_batched_group_failure_falls_back_with_isolation(self):
        """A group the batched runtime rejects still yields per-scenario
        outcomes (here: label_flip poisoning mislabelled for the workload
        fails identically under both runtimes)."""
        specs = [ScenarioSpec(name=f"b{seed}", seed=seed,
                              worker_attack=AttackSpec("label_flip",
                                                       {"num_classes": 10}),
                              **_small()) for seed in (0, 1)]
        result = run_campaign(specs, batch_seeds=True)
        assert result.counts()["failed"] == 2
        assert all(not outcome.batched for outcome in result.outcomes)

    def test_parallel_pool_execution_with_batching(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = self._seed_specs(count=2)
        specs.append(ScenarioSpec(name="other-rule", seed=0,
                                  gradient_rule="median", **_small()))
        result = run_campaign(specs, store=store, processes=2,
                              batch_seeds=True)
        assert result.counts() == {"ran": 3, "cached": 0, "failed": 0}
        assert store.contains(specs[0].spec_hash())


class TestBatchedInternals:
    def test_histories_carry_sequential_config_metadata(self):
        specs = [ScenarioSpec(name=f"s{seed}", seed=seed, **_small())
                 for seed in (0, 1)]
        histories = run_batched_scenarios(specs)
        sequential = execute_scenario(specs[0])
        assert histories[0].config == sequential.config
        assert histories[0].label == "s0" and histories[1].label == "s1"

    def test_global_parameters_shape(self):
        specs = [ScenarioSpec(name=f"s{seed}", seed=seed, **_small())
                 for seed in (0, 1)]
        trainer = BatchedGuanYuTrainer(specs)
        trainer.run(2, eval_every=1)
        observer = trainer.global_parameters()
        assert observer.shape == (2, trainer.num_parameters)
        assert np.all(np.isfinite(observer))
