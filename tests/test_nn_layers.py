"""Unit tests for neural-network layers and initialisers."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Sigmoid, Tanh
from repro.nn.init import INITIALIZERS, get_initializer, glorot_uniform, he_normal
from repro.tensor import Tensor


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 7, rng=np.random.default_rng(0))
        assert layer(Tensor(np.zeros((3, 4)))).shape == (3, 7)

    def test_no_bias_option(self):
        layer = Dense(4, 7, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_zero_weight_zero_bias_gives_zero_output(self):
        layer = Dense(3, 2, initializer="zeros", rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 3))))
        assert np.allclose(out.data, 0.0)

    def test_deterministic_with_seeded_rng(self):
        a = Dense(4, 4, rng=np.random.default_rng(3))
        b = Dense(4, 4, rng=np.random.default_rng(3))
        assert np.allclose(a.weight.data, b.weight.data)


class TestConvAndPoolLayers:
    def test_conv_layer_shape(self):
        layer = Conv2D(3, 8, kernel_size=3, padding=1, rng=np.random.default_rng(0))
        assert layer(Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 8, 8, 8)

    def test_conv_parameter_count(self):
        layer = Conv2D(3, 8, kernel_size=5, rng=np.random.default_rng(0))
        assert layer.num_parameters() == 3 * 8 * 25 + 8

    def test_maxpool_layer_shape(self):
        layer = MaxPool2D(kernel_size=2)
        assert layer(Tensor(np.zeros((1, 4, 8, 8)))).shape == (1, 4, 4, 4)

    def test_flatten_layer(self):
        assert Flatten()(Tensor(np.zeros((2, 3, 4, 4)))).shape == (2, 48)


class TestActivationLayers:
    def test_relu_layer(self):
        assert np.allclose(ReLU()(Tensor(np.array([-2.0, 3.0]))).data, [0.0, 3.0])

    def test_tanh_layer_range(self):
        out = Tanh()(Tensor(np.array([-100.0, 100.0]))).data
        assert np.allclose(out, [-1.0, 1.0])

    def test_sigmoid_layer_midpoint(self):
        assert Sigmoid()(Tensor(np.zeros(3))).data == pytest.approx(0.5)


class TestDropout:
    def test_identity_in_eval_mode(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = np.random.default_rng(0).normal(size=(10, 10))
        assert np.allclose(layer(Tensor(x)).data, x)

    def test_zero_rate_is_identity_in_training(self):
        layer = Dropout(0.0)
        x = np.ones((5, 5))
        assert np.allclose(layer(Tensor(x)).data, x)

    def test_training_mode_zeroes_some_entries(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((20, 20)))).data
        assert np.any(out == 0.0)
        # Inverted dropout preserves the expectation.
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestInitializers:
    def test_registry_contains_all(self):
        for name in ("zeros", "uniform", "normal", "glorot_uniform", "he_normal"):
            assert name in INITIALIZERS

    def test_get_initializer_unknown_raises(self):
        with pytest.raises(KeyError):
            get_initializer("nope")

    def test_glorot_uniform_bounds(self):
        rng = np.random.default_rng(0)
        values = glorot_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(values) <= limit)

    def test_he_normal_std_scales_with_fan_in(self):
        rng = np.random.default_rng(0)
        values = he_normal((1000, 10), rng)
        assert values.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.15)

    def test_conv_fan_in_computation(self):
        rng = np.random.default_rng(0)
        values = he_normal((8, 3, 5, 5), rng)
        assert values.shape == (8, 3, 5, 5)
