"""Tests for metrics: accuracy, throughput, and training histories."""

import numpy as np
import pytest

from repro.data import make_blobs_dataset
from repro.metrics import (
    StepRecord,
    TrainingHistory,
    evaluate_accuracy,
    evaluate_loss,
    overhead_percent,
    throughput_updates_per_second,
    time_to_accuracy,
)
from repro.metrics.throughput import steps_to_accuracy
from repro.nn import build_model
from repro.runtime.cost import GRID5000_LIKE, INSTANT


class TestAccuracyAndLoss:
    def test_untrained_model_near_chance(self):
        data = make_blobs_dataset(num_samples=300, num_classes=3, num_features=4, seed=0)
        model = build_model("softmax", in_features=4, num_classes=3)
        accuracy = evaluate_accuracy(model, data)
        assert 0.0 <= accuracy <= 1.0

    def test_perfectly_biased_model_hits_class_frequency(self):
        data = make_blobs_dataset(num_samples=200, num_classes=2, num_features=2, seed=0)
        model = build_model("softmax", in_features=2, num_classes=2)
        # Force the model to always predict class 0 by a huge bias.
        flat = model.get_flat_parameters()
        flat[:] = 0.0
        model.set_flat_parameters(flat)
        model.linear.bias.data[...] = np.array([100.0, -100.0])
        accuracy = evaluate_accuracy(model, data)
        expected = (data.labels == 0).mean()
        assert accuracy == pytest.approx(expected)

    def test_max_samples_limits_evaluation(self):
        data = make_blobs_dataset(num_samples=500, num_classes=3, num_features=4, seed=0)
        model = build_model("softmax", in_features=4, num_classes=3)
        accuracy = evaluate_accuracy(model, data, max_samples=50)
        assert 0.0 <= accuracy <= 1.0

    def test_loss_positive_for_untrained_model(self):
        data = make_blobs_dataset(num_samples=100, num_classes=3, num_features=4, seed=0)
        model = build_model("softmax", in_features=4, num_classes=3)
        assert evaluate_loss(model, data) > 0.0


class TestTrainingHistory:
    def _history(self):
        history = TrainingHistory(label="test", config={"k": 1})
        history.add(StepRecord(step=0, simulated_time=1.0, train_loss=2.0,
                               test_accuracy=0.3))
        history.add(StepRecord(step=1, simulated_time=2.0, train_loss=1.0))
        history.add(StepRecord(step=2, simulated_time=3.0, train_loss=0.5,
                               test_accuracy=0.7, max_server_spread=0.1))
        return history

    def test_series_extraction(self):
        history = self._history()
        assert np.allclose(history.steps(), [0, 1, 2])
        assert np.allclose(history.times(), [1.0, 2.0, 3.0])
        assert np.isnan(history.accuracies()[1])
        assert history.losses()[2] == 0.5

    def test_summary_helpers(self):
        history = self._history()
        assert history.final_accuracy() == 0.7
        assert history.best_accuracy() == 0.7
        assert history.total_time() == 3.0
        assert history.total_steps() == 3

    def test_empty_history_defaults(self):
        history = TrainingHistory()
        assert np.isnan(history.final_accuracy())
        assert history.total_time() == 0.0
        assert history.total_steps() == 0

    def test_json_round_trip(self):
        history = self._history()
        restored = TrainingHistory.from_json(history.to_json())
        assert restored.label == "test"
        assert restored.config == {"k": 1}
        assert len(restored) == 3
        assert restored.records[2].max_server_spread == 0.1

    def test_mean_phase_durations(self):
        history = TrainingHistory()
        history.add(StepRecord(step=0, simulated_time=1.0,
                               phase_durations={"phase1": 1.0, "phase2": 2.0}))
        history.add(StepRecord(step=1, simulated_time=2.0,
                               phase_durations={"phase1": 3.0, "phase2": 4.0}))
        history.add(StepRecord(step=2, simulated_time=3.0))  # no breakdown
        means = history.mean_phase_durations()
        assert means == {"phase1": 2.0, "phase2": 3.0}

    def test_mean_phase_durations_empty(self):
        assert TrainingHistory().mean_phase_durations() == {}

    def test_phase_durations_survive_json_round_trip(self):
        history = TrainingHistory()
        history.add(StepRecord(step=0, simulated_time=1.0,
                               phase_durations={"phase1": 0.5}))
        restored = TrainingHistory.from_json(history.to_json())
        assert restored.records[0].phase_durations == {"phase1": 0.5}


class TestThroughputMetrics:
    def _history(self, times, accuracies):
        history = TrainingHistory()
        for step, (time, accuracy) in enumerate(zip(times, accuracies)):
            history.add(StepRecord(step=step, simulated_time=time,
                                   test_accuracy=accuracy))
        return history

    def test_throughput_updates_per_second(self):
        history = self._history([1.0, 2.0, 3.0, 4.0], [None] * 4)
        assert throughput_updates_per_second(history) == pytest.approx(1.0)

    def test_time_and_steps_to_accuracy(self):
        history = self._history([1.0, 2.0, 3.0], [0.2, 0.5, 0.9])
        assert time_to_accuracy(history, 0.5) == 2.0
        assert steps_to_accuracy(history, 0.5) == 1
        assert time_to_accuracy(history, 0.95) is None

    def test_overhead_percent(self):
        assert overhead_percent(100.0, 165.0) == pytest.approx(65.0)
        assert overhead_percent(100.0, 130.0) == pytest.approx(30.0)
        assert np.isnan(overhead_percent(0.0, 1.0))


class TestCostModel:
    def test_gradient_time_scales_with_batch_and_model(self):
        cost = GRID5000_LIKE
        small = cost.gradient_time(32, 1_000_00)
        large = cost.gradient_time(128, 1_750_000)
        assert large > small

    def test_krum_more_expensive_than_median(self):
        cost = GRID5000_LIKE
        assert cost.aggregation_time("multi_krum", 13, 1_750_000) > \
            cost.aggregation_time("median", 13, 1_750_000)

    def test_mean_cheapest(self):
        cost = GRID5000_LIKE
        assert cost.aggregation_time("mean", 13, 1_750_000) < \
            cost.aggregation_time("median", 13, 1_750_000)

    def test_serialization_grows_with_model_size(self):
        cost = GRID5000_LIKE
        assert cost.serialization_time(1_750_000) > cost.serialization_time(10_000)

    def test_instant_model_is_all_zero(self):
        assert INSTANT.gradient_time(128, 1_750_000) == 0.0
        assert INSTANT.serialization_time(1_750_000) == 0.0
        assert INSTANT.update_time(1_750_000) == 0.0
