"""Tier-1 guarantee: heterogeneity is bit-identical across all runtimes.

Two layers, mirroring the batch/adversary equivalence suites:

* **sequential vs batched** — a hetero scenario (non-i.i.d. partition,
  per-worker profiles, local steps) produces bit-identical *full
  histories* per seed whether executed by :class:`GuanYuTrainer` or the
  vectorised multi-replica runtime;
* **sequential vs threaded** — with full quorums and permutation-invariant
  rules the threaded runtime's *loss trajectory* is bit-identical to the
  simulated one for the same hetero scenario.  (Timing fields live on the
  wall clock and are nondeterministic by design; with partial quorums the
  collected message subsets are scheduling-dependent, so the contract —
  documented in ``docs/heterogeneity.md`` — is data-path determinism.)

Both hold because the partition is a pure function of ``(seed, n, spec)``
and all runtimes share the same per-worker seed constants.
"""

import pytest

from repro.batch import run_batched_scenarios
from repro.campaign.engine import build_trainer, execute_scenario
from repro.campaign.spec import ScenarioSpec
from repro.experiments.heterogeneity import (
    heterogeneity_table,
    run_heterogeneity_study,
)

HETERO_CASES = [
    {"partition": "dirichlet", "alpha": 0.5, "min_samples": 16},
    {"partition": "shards", "shards_per_worker": 2},
    {"imbalance": 1.2, "min_samples": 16,
     "profiles": [{"batch_size": 8, "local_steps": 2,
                   "delay_multiplier": 1.5}, {}]},
    {"partition": "dirichlet", "alpha": 0.8, "min_samples": 16,
     "feature_drift": 0.2,
     "profiles": [{"local_steps": 3}, {}, {"batch_size": 4}]},
]


def _case_id(case):
    return case.get("partition", "iid") + (
        "+profiles" if case.get("profiles") else "")


class TestSequentialVsBatched:
    @pytest.mark.parametrize("hetero", HETERO_CASES, ids=_case_id)
    def test_histories_bit_identical(self, hetero):
        specs = [ScenarioSpec(name=f"h-{seed}", num_steps=6,
                              dataset_size=400, seed=seed,
                              hetero=dict(hetero))
                 for seed in (11, 12)]
        sequential = [execute_scenario(spec.replace()) for spec in specs]
        batched = run_batched_scenarios([spec.replace() for spec in specs])
        for seq_history, bat_history in zip(sequential, batched):
            assert seq_history.to_dict() == bat_history.to_dict()

    def test_heterogeneity_actually_changes_training(self):
        homogeneous = execute_scenario(
            ScenarioSpec(name="iid", num_steps=6, dataset_size=400, seed=11))
        skewed = execute_scenario(
            ScenarioSpec(name="skew", num_steps=6, dataset_size=400, seed=11,
                         hetero=HETERO_CASES[0]))
        assert homogeneous.to_dict() != skewed.to_dict()


class TestSequentialVsThreaded:
    @pytest.mark.parametrize("hetero", HETERO_CASES[:2], ids=_case_id)
    def test_loss_trajectories_bit_identical(self, hetero):
        # Full quorums make the collected multisets scheduling-independent
        # and the coordinate-wise median is permutation-invariant, so the
        # per-step losses must agree bit for bit with the simulated run.
        base = dict(num_workers=6, num_servers=3,
                    declared_byzantine_workers=0,
                    declared_byzantine_servers=0,
                    model_quorum=3, gradient_quorum=6,
                    gradient_rule="median", model_rule="median",
                    num_steps=5, dataset_size=360, seed=9,
                    hetero=dict(hetero))
        sequential = execute_scenario(ScenarioSpec(name="seq", **base))
        threaded_spec = ScenarioSpec(name="thr", trainer="guanyu_threaded",
                                     **base).validate()
        threaded = build_trainer(threaded_spec).run(threaded_spec.num_steps)
        assert [r.train_loss for r in sequential.records] \
            == [r.train_loss for r in threaded.records]


class TestHeterogeneityStudy:
    def test_pinned_seed_table_reproduces(self, tmp_path):
        kwargs = dict(skews=("iid", "dirichlet=0.2"),
                      gars=("median",), adversaries=(None,), num_steps=5)
        first, _ = run_heterogeneity_study(**kwargs)
        second, _ = run_heterogeneity_study(**kwargs)
        assert heterogeneity_table(first) == heterogeneity_table(second)

        (row,) = heterogeneity_table(first)
        assert row["gradient_rule"] == "median"
        assert 0.0 <= row["dirichlet=0.2"] <= 1.0
        # The honest median visibly loses accuracy under heavy label skew —
        # the table's whole point.  Deterministic for the pinned seed.
        assert row["dirichlet=0.2"] < row["iid"]

    def test_seed_axis_batches_and_matches_serial(self):
        kwargs = dict(skews=("iid", "dirichlet=0.2"), gars=("median",),
                      adversaries=(None,), seeds=(1, 2), num_steps=4)
        serial, serial_histories = run_heterogeneity_study(**kwargs)
        batched, batched_histories = run_heterogeneity_study(
            batch_seeds=True, **kwargs)
        # Seed replicas of one cell really ran on the batched runtime,
        # and the mean-over-seeds table is bit-identical either way.
        assert heterogeneity_table(serial) == heterogeneity_table(batched)
        for name, history in serial_histories.items():
            assert "seed=" in name
            assert history.to_dict() == batched_histories[name].to_dict()
