"""Tests for the heterogeneity engine: partitions, profiles, spec plumbing.

Covers the three contract layers:

* the partitioner is a pure function of ``(seed, num_workers, spec)`` and
  each scheme produces the skew it claims;
* ``ScenarioSpec.hetero`` round-trips, validates, and — crucially —
  preserves the content addresses of every pre-heterogeneity store
  (absent ≡ legacy, pinned against literal hashes recorded before the
  field existed);
* the campaign engine groups hetero scenarios correctly for the batched
  runtime and stores batched results under the sequential addresses.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.campaign import ResultStore, ScenarioSpec, execute_scenario, run_campaign
from repro.data import make_blobs_dataset, partition_dataset
from repro.hetero import (
    HeteroSpec,
    WorkerProfile,
    hetero_partition,
    imbalanced_counts,
    partition_indices,
)

#: spec_hash()/batch_group_hash() of hetero-free specs, recorded on the
#: commit *before* the hetero field existed.  If these move, every result
#: store filled by earlier versions silently stops resolving.
LEGACY_DEFAULT_HASH = \
    "f4f9a6fcf4cd36fd58a1805cc69feaab65fc495faa2537e8ed7daaca0ca9aa09"
LEGACY_DEFAULT_GROUP_HASH = \
    "830df4188ce84283658fe8d4713e7796d7d9a79076f95a1ef94250eaa529c9bc"
LEGACY_TINY_HASH = \
    "c60181e0c069274be9d445e4831e0a959c3a2907cf7034aaa7db8b31eeac0552"
LEGACY_TINY_GROUP_HASH = \
    "9306f8e3b754b301e1fdb7eec2b1ab1972f4f54e9321a356bcfbc832cae4587d"


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(name="tiny", num_workers=6, num_servers=3,
                declared_byzantine_workers=1, declared_byzantine_servers=0,
                num_steps=4, eval_every=2, dataset_size=300,
                max_eval_samples=64)
    base.update(overrides)
    return ScenarioSpec(**base)


def labels_for(num_samples=240, num_classes=4, seed=0):
    return make_blobs_dataset(num_samples=num_samples,
                              num_classes=num_classes, seed=seed).labels


# --------------------------------------------------------------------------- #
# Partitioner
# --------------------------------------------------------------------------- #
class TestPartitioner:
    @pytest.mark.parametrize("spec", [
        HeteroSpec(partition="dirichlet", alpha=0.3),
        HeteroSpec(partition="shards", shards_per_worker=2),
        HeteroSpec(imbalance=1.5, min_samples=4),
        HeteroSpec(partition="dirichlet", alpha=0.5, imbalance=1.0,
                   feature_drift=0.2, min_samples=4),
    ], ids=lambda spec: json.dumps(spec.to_dict(), sort_keys=True))
    def test_pure_function_of_seed_and_spec(self, spec):
        data = make_blobs_dataset(num_samples=240, num_classes=4, seed=3)
        first = hetero_partition(data, 6, spec, seed=11)
        second = hetero_partition(data, 6, spec, seed=11)
        for a, b in zip(first, second):
            assert (a.labels == b.labels).all()
            assert (a.features == b.features).all()
        assert sum(len(shard) for shard in first) == len(data)
        different_seed = hetero_partition(data, 6, spec, seed=12)
        assert any(len(a) != len(c) or not (a.labels == c.labels).all()
                   for a, c in zip(first, different_seed))

    def test_dirichlet_skew_grows_as_alpha_shrinks(self):
        labels = labels_for()

        def mean_label_entropy(alpha):
            pieces = partition_indices(
                labels, 6, HeteroSpec(partition="dirichlet", alpha=alpha),
                seed=5)
            entropies = []
            for piece in pieces:
                counts = np.bincount(labels[piece], minlength=4)
                p = counts[counts > 0] / counts.sum()
                entropies.append(-(p * np.log(p)).sum())
            return float(np.mean(entropies))

        assert mean_label_entropy(0.05) < mean_label_entropy(100.0)

    def test_shards_bound_the_labels_per_worker(self):
        # Equal class sizes align the shard cuts with the class boundaries,
        # so every shard is single-class and each worker sees at most
        # shards_per_worker distinct labels — the pathological split.
        labels = np.repeat(np.arange(10), 30)
        pieces = partition_indices(
            labels, 5, HeteroSpec(partition="shards", shards_per_worker=2),
            seed=7)
        for piece in pieces:
            assert len(np.unique(labels[piece])) <= 2
        assert sorted(np.concatenate(pieces)) == list(range(300))

    def test_imbalanced_counts_spread_and_floor(self):
        counts = imbalanced_counts(240, 6, imbalance=1.5, seed=9,
                                   min_samples=4)
        assert counts.sum() == 240
        assert counts.min() >= 4
        assert counts.max() > 240 // 6  # genuinely skewed
        balanced = imbalanced_counts(240, 6, imbalance=0.0, seed=9)
        assert (balanced == 40).all()

    def test_min_samples_floor_is_enforced(self):
        labels = labels_for()
        pieces = partition_indices(
            labels, 6, HeteroSpec(partition="dirichlet", alpha=0.05,
                                  min_samples=10), seed=1)
        assert min(piece.shape[0] for piece in pieces) >= 10

    def test_feature_drift_shifts_features_not_labels(self):
        data = make_blobs_dataset(num_samples=240, num_classes=4, seed=3)
        plain = hetero_partition(data, 4, HeteroSpec(imbalance=0.5), seed=2)
        drifted = hetero_partition(
            data, 4, HeteroSpec(imbalance=0.5, feature_drift=0.3), seed=2)
        for a, b in zip(plain, drifted):
            assert (a.labels == b.labels).all()
            assert not np.allclose(a.features, b.features)
            # One offset per worker: the delta is constant across samples.
            delta = b.features - a.features
            assert np.allclose(delta, delta[0])

    def test_impossible_floor_raises(self):
        labels = labels_for(num_samples=10)
        with pytest.raises(ValueError, match="cannot give"):
            partition_indices(labels, 6, HeteroSpec(min_samples=2), seed=0)

    def test_partition_dataset_dispatches(self):
        data = make_blobs_dataset(num_samples=240, num_classes=4, seed=3)
        legacy = partition_dataset(data, 6, sharding="iid", seed=4)
        explicit_iid = partition_dataset(data, 6, hetero=HeteroSpec(), seed=4)
        for a, b in zip(legacy, explicit_iid):
            assert (a.labels == b.labels).all()
        with pytest.raises(ValueError, match="legacy sharding"):
            partition_dataset(data, 6, sharding="by_class",
                              hetero=HeteroSpec(partition="shards"), seed=4)


# --------------------------------------------------------------------------- #
# Spec validation and round trips
# --------------------------------------------------------------------------- #
class TestHeteroSpec:
    def test_falsy_spec_normalises_to_absent(self):
        spec = tiny_spec(hetero={"partition": "iid"})
        assert spec.hetero is None
        assert tiny_spec(hetero=HeteroSpec()).hetero is None

    def test_scenario_round_trips_through_json(self):
        spec = tiny_spec(hetero={"partition": "dirichlet", "alpha": 0.2,
                                 "profiles": [{"batch_size": 8,
                                               "local_steps": 2}]})
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.hetero.profiles[0].batch_size == 8

    def test_compact_form_drops_irrelevant_knobs(self):
        spec = HeteroSpec(partition="dirichlet", alpha=0.5,
                          shards_per_worker=7)
        assert "shards_per_worker" not in spec.to_dict()

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown partition"):
            HeteroSpec(partition="zipf").validate()
        with pytest.raises(ValueError, match="alpha must be positive"):
            HeteroSpec(partition="dirichlet", alpha=0.0).validate()
        with pytest.raises(ValueError, match="imbalance composes"):
            HeteroSpec(partition="shards", imbalance=1.0).validate()
        with pytest.raises(ValueError, match="local_steps"):
            WorkerProfile(local_steps=0).validate()
        with pytest.raises(ValueError, match="delay_multiplier"):
            WorkerProfile(delay_multiplier=0.0).validate()
        with pytest.raises(ValueError, match="round-robin"):
            HeteroSpec(profiles=[WorkerProfile(batch_size=4)] * 9
                       ).validate(num_workers=6)
        with pytest.raises(ValueError, match="legacy sharding"):
            tiny_spec(sharding="by_class",
                      hetero={"partition": "shards"}).validate()

    def test_from_token(self):
        assert HeteroSpec.from_token("iid") is None
        assert HeteroSpec.from_token("dirichlet=0.1").alpha == 0.1
        assert HeteroSpec.from_token("shards=3").shards_per_worker == 3
        assert HeteroSpec.from_token("imbalance=1.5").imbalance == 1.5
        assert HeteroSpec.from_token("drift=0.4").feature_drift == 0.4
        with pytest.raises(ValueError, match="unknown hetero token"):
            HeteroSpec.from_token("zipf=2")
        with pytest.raises(ValueError, match="bad hetero token"):
            HeteroSpec.from_token("dirichlet=lots")


# --------------------------------------------------------------------------- #
# Content addressing: old stores must resolve unchanged
# --------------------------------------------------------------------------- #
class TestSpecHashStability:
    def test_legacy_hashes_are_pinned(self):
        assert ScenarioSpec().spec_hash() == LEGACY_DEFAULT_HASH
        assert ScenarioSpec().batch_group_hash() == LEGACY_DEFAULT_GROUP_HASH
        assert tiny_spec().spec_hash() == LEGACY_TINY_HASH
        assert tiny_spec().batch_group_hash() == LEGACY_TINY_GROUP_HASH

    def test_explicit_iid_hetero_hashes_like_absent(self):
        assert tiny_spec(hetero={"partition": "iid"}).spec_hash() \
            == LEGACY_TINY_HASH

    def test_hetero_changes_the_address(self):
        skewed = tiny_spec(hetero={"partition": "dirichlet", "alpha": 0.1})
        assert skewed.spec_hash() != LEGACY_TINY_HASH
        assert skewed.spec_hash() != \
            tiny_spec(hetero={"partition": "shards"}).spec_hash()

    def test_batch_group_hash_groups_seed_replicas_per_hetero_cell(self):
        hetero = {"partition": "dirichlet", "alpha": 0.5}
        a = tiny_spec(seed=1, hetero=dict(hetero))
        b = tiny_spec(seed=2, hetero=dict(hetero))
        other = tiny_spec(seed=1, hetero={"partition": "shards"})
        assert a.batch_group_hash() == b.batch_group_hash()
        assert a.spec_hash() != b.spec_hash()
        assert a.batch_group_hash() != other.batch_group_hash()
        assert a.batch_group_hash() != tiny_spec(seed=1).batch_group_hash()


# --------------------------------------------------------------------------- #
# Campaign engine and store integration
# --------------------------------------------------------------------------- #
class TestCampaignIntegration:
    def test_batched_campaign_fills_sequential_addresses(self, tmp_path):
        hetero = {"partition": "dirichlet", "alpha": 0.5, "min_samples": 16}
        scenarios = [tiny_spec(name=f"d-{seed}", seed=seed,
                               hetero=dict(hetero))
                     for seed in (1, 2)]
        store = ResultStore(tmp_path / "store")
        result = run_campaign([spec.replace() for spec in scenarios],
                              store=store, batch_seeds=True)
        assert all(outcome.batched for outcome in result.outcomes)
        for spec in scenarios:
            stored = store.get(spec.spec_hash())
            sequential = execute_scenario(spec.replace())
            assert stored.history.to_dict() == sequential.to_dict()

    def test_store_summary_and_query_surface_hetero(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec(hetero={"partition": "shards"})
        run_campaign([spec], store=store)
        (row,) = store.summary_rows()
        assert row["hetero"] == "shards"
        assert store.query(hetero={"partition": "shards"})
        assert not store.query(hetero=None)

    def test_mismatched_lane_batch_clamps_fall_back(self):
        # Workers can end up with fewer samples than the batch size under
        # extreme skew; per-seed clamps then differ across lanes and the
        # batched runtime must refuse (the campaign engine falls back).
        hetero = {"partition": "dirichlet", "alpha": 0.05}
        scenarios = [tiny_spec(name=f"x-{seed}", seed=seed,
                               hetero=dict(hetero), batch_size=32)
                     for seed in range(4)]
        result = run_campaign([spec.replace() for spec in scenarios],
                              batch_seeds=True)
        for outcome, spec in zip(result.outcomes, scenarios):
            assert outcome.status in ("ran", "cached")
            if outcome.status == "ran" and not outcome.batched:
                sequential = execute_scenario(spec.replace())
                assert outcome.history.to_dict() == sequential.to_dict()


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestHeteroCli:
    def test_sweep_hetero_axis(self, capsys, tmp_path):
        code = cli.main(["--steps", "4", "sweep", "--gars", "median",
                         "--hetero", "iid", "dirichlet=0.3",
                         "--processes", "1",
                         "--store", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert code == 0
        assert "dirichlet=0.3" in out
        assert "failed 0" in out

    def test_sweep_rejects_bad_hetero_token(self, capsys):
        code = cli.main(["sweep", "--hetero", "zipf=2"])
        assert code == 2
        assert "unknown hetero token" in capsys.readouterr().err

    def test_hetero_subcommand_writes_table_and_json(self, capsys, tmp_path):
        json_path = tmp_path / "hetero.json"
        code = cli.main(["--steps", "4", "--json", str(json_path), "hetero",
                         "--skews", "iid", "dirichlet=0.3",
                         "--gars", "median", "--adversaries", "none"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gradient_rule" in out and "dirichlet=0.3" in out
        payload = json.loads(json_path.read_text())
        assert payload["rows"][0]["gradient_rule"] == "median"
        assert set(payload["rows"][0]) >= {"iid", "dirichlet=0.3"}
