"""Property tests of the batched GAR code path.

The batched multi-replica runtime's equivalence guarantee rests on
``aggregate_batched`` over an ``(R, n, D)`` stack being **bit-identical**
to the ``R`` sequential ``aggregate`` calls — for every registered rule,
including under adversarially-shaped inputs.
"""

import numpy as np
import pytest

from repro.aggregation import (
    GradientAggregationRule,
    available_rules,
    get_rule,
    krum_scores,
    krum_scores_batched,
    pairwise_squared_distances_batched,
)
from repro.aggregation.krum import pairwise_squared_distances


def _attack_stacks(rng, replicas, n, dim, num_byzantine):
    """Replica stacks shaped like the attacks the trainers produce."""
    honest = rng.normal(size=(replicas, n, dim))

    large_outliers = honest.copy()
    large_outliers[:, -num_byzantine:] = rng.normal(
        0.0, 100.0, size=(replicas, num_byzantine, dim))

    sign_flipped = honest.copy()
    sign_flipped[:, -num_byzantine:] = -honest[:, -num_byzantine:]

    # "A little is enough": Byzantine rows inside the honest noise envelope.
    mean = honest[:, :-num_byzantine].mean(axis=1, keepdims=True)
    std = honest[:, :-num_byzantine].std(axis=1, keepdims=True)
    little = honest.copy()
    little[:, -num_byzantine:] = mean - 1.5 * std

    identical_rows = np.repeat(rng.normal(size=(replicas, 1, dim)), n, axis=1)
    return {"honest": honest, "large_outliers": large_outliers,
            "sign_flipped": sign_flipped, "little_is_enough": little,
            "identical_rows": identical_rows}


@pytest.mark.parametrize("rule_name", available_rules())
@pytest.mark.parametrize("num_byzantine", [0, 2])
def test_batched_equals_sequential_for_every_rule(rule_name, num_byzantine):
    rng = np.random.default_rng(hash(rule_name) % (2 ** 32))
    replicas, dim = 6, 23
    rule = get_rule(rule_name, num_byzantine=num_byzantine)
    n = max(rule.minimum_inputs(), 2 * num_byzantine + 4)
    byzantine_rows = max(num_byzantine, 1)
    for label, stack in _attack_stacks(rng, replicas, n, dim,
                                       byzantine_rows).items():
        batched = rule.aggregate_batched(stack)
        sequential = np.stack([rule.aggregate(stack[r])
                               for r in range(replicas)])
        assert batched.shape == (replicas, dim), (rule_name, label)
        assert np.array_equal(batched, sequential), (rule_name, label)


def test_batched_single_replica_matches_plain_aggregate():
    rng = np.random.default_rng(0)
    stack = rng.normal(size=(1, 9, 11))
    for rule_name in available_rules():
        rule = get_rule(rule_name, num_byzantine=1)
        if stack.shape[1] < rule.minimum_inputs():
            continue
        assert np.array_equal(rule.aggregate_batched(stack)[0],
                              rule.aggregate(stack[0])), rule_name


def test_default_fallback_loops_per_replica():
    """Rules without a vectorised override still aggregate correctly."""

    class LastVector(GradientAggregationRule):
        name = "last_vector_test_only"

        def _aggregate(self, stacked):
            return stacked[-1].copy()

    rng = np.random.default_rng(1)
    stack = rng.normal(size=(4, 5, 7))
    out = LastVector().aggregate_batched(stack)
    assert np.array_equal(out, stack[:, -1])


def test_batched_validation_errors():
    rule = get_rule("median", num_byzantine=1)
    with pytest.raises(ValueError, match=r"\(R, n, d\)"):
        rule.aggregate_batched(np.zeros((4, 5)))
    with pytest.raises(ValueError, match="at least one replica"):
        rule.aggregate_batched(np.zeros((0, 5, 3)))
    with pytest.raises(ValueError, match="requires at least"):
        rule.aggregate_batched(np.zeros((2, 2, 3)))  # needs 2f+1 = 3
    bad = np.zeros((2, 5, 3))
    bad[1, 2, 0] = np.nan
    with pytest.raises(ValueError, match="NaN or Inf"):
        rule.aggregate_batched(bad)


def test_batched_gram_kernel_matches_sequential():
    rng = np.random.default_rng(2)
    stack = rng.normal(size=(5, 9, 31))
    batched = pairwise_squared_distances_batched(stack)
    for r in range(stack.shape[0]):
        assert np.array_equal(batched[r], pairwise_squared_distances(stack[r]))


def test_batched_krum_scores_match_sequential():
    rng = np.random.default_rng(3)
    stack = rng.normal(size=(5, 9, 17))
    batched = krum_scores_batched(stack, num_byzantine=2)
    for r in range(stack.shape[0]):
        assert np.array_equal(batched[r], krum_scores(stack[r],
                                                      num_byzantine=2))
    with pytest.raises(ValueError, match="n - f - 2"):
        krum_scores_batched(stack, num_byzantine=8)
