"""Unit tests for each gradient aggregation rule."""

import numpy as np
import pytest

from repro.aggregation import (
    ArithmeticMean,
    Bulyan,
    CoordinateWiseMedian,
    GeometricMedian,
    Krum,
    MarginalMedian,
    MultiKrum,
    TrimmedMean,
    available_rules,
    check_vectors,
    get_rule,
    krum_scores,
)


def _cloud(rng, n=10, d=5, center=0.0, spread=1.0):
    return rng.normal(center, spread, size=(n, d))


class TestCheckVectors:
    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            check_vectors([])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            check_vectors([np.zeros(3), np.zeros(4)])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_vectors([np.array([1.0, np.nan])])

    def test_accepts_2d_array(self):
        assert check_vectors(np.ones((3, 4))).shape == (3, 4)

    def test_flattens_multidimensional_inputs(self):
        stacked = check_vectors([np.ones((2, 2)), np.zeros((2, 2))])
        assert stacked.shape == (2, 4)


class TestArithmeticMean:
    def test_matches_numpy_mean(self):
        rng = np.random.default_rng(0)
        cloud = _cloud(rng)
        assert np.allclose(ArithmeticMean()(cloud), cloud.mean(axis=0))

    def test_single_outlier_moves_output_arbitrarily(self):
        cloud = np.zeros((9, 3))
        attacked = np.concatenate([cloud, np.full((1, 3), 1e6)])
        out = ArithmeticMean()(attacked)
        assert np.linalg.norm(out) > 1e4  # no resilience whatsoever

    def test_not_marked_byzantine_resilient(self):
        assert ArithmeticMean.byzantine_resilient is False


class TestCoordinateWiseMedian:
    def test_odd_count_picks_middle_values(self):
        vectors = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        assert np.allclose(CoordinateWiseMedian()(vectors), [2.0, 20.0])

    def test_output_within_correct_range_despite_outliers(self):
        correct = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        byzantine = np.array([[1e9, -1e9]])
        out = CoordinateWiseMedian(num_byzantine=1)(np.concatenate([correct, byzantine]))
        assert np.all(out >= 0.0) and np.all(out <= 2.0)

    def test_minimum_inputs(self):
        rule = CoordinateWiseMedian(num_byzantine=2)
        assert rule.minimum_inputs() == 5
        with pytest.raises(ValueError):
            rule(np.zeros((4, 3)))

    def test_marginal_median_discards_largest_norms(self):
        correct = np.zeros((4, 3))
        byzantine = np.full((1, 3), 100.0)
        out = MarginalMedian(num_byzantine=1)(np.concatenate([correct, byzantine]))
        assert np.allclose(out, 0.0)


class TestTrimmedMean:
    def test_equals_mean_when_f_zero(self):
        rng = np.random.default_rng(1)
        cloud = _cloud(rng)
        assert np.allclose(TrimmedMean()(cloud), cloud.mean(axis=0))

    def test_trims_extremes(self):
        vectors = np.array([[0.0], [1.0], [2.0], [3.0], [1000.0]])
        out = TrimmedMean(num_byzantine=1)(vectors)
        assert np.allclose(out, [2.0])

    def test_requires_more_than_2f_inputs(self):
        with pytest.raises(ValueError):
            TrimmedMean(num_byzantine=2)(np.zeros((4, 2)))


class TestKrumFamily:
    def test_krum_scores_shape_and_ordering(self):
        rng = np.random.default_rng(2)
        cloud = np.concatenate([_cloud(rng, n=8, d=4), np.full((1, 4), 50.0)])
        scores = krum_scores(cloud, num_byzantine=1)
        assert scores.shape == (9,)
        assert scores.argmax() == 8  # the far-away vector scores worst

    def test_krum_outputs_one_of_the_inputs(self):
        rng = np.random.default_rng(3)
        cloud = _cloud(rng, n=9)
        out = Krum(num_byzantine=2)(cloud)
        assert any(np.allclose(out, row) for row in cloud)

    def test_krum_rejects_obvious_outlier(self):
        rng = np.random.default_rng(4)
        correct = _cloud(rng, n=8, d=4, spread=0.1)
        byzantine = np.full((1, 4), 1e5)
        out = Krum(num_byzantine=1)(np.concatenate([correct, byzantine]))
        assert np.linalg.norm(out) < 10.0

    def test_multi_krum_requires_2f_plus_3(self):
        rule = MultiKrum(num_byzantine=2)
        assert rule.minimum_inputs() == 7
        with pytest.raises(ValueError):
            rule(np.zeros((6, 2)))

    def test_multi_krum_selection_size_default(self):
        rule = MultiKrum(num_byzantine=1)
        assert rule.selection_size(10) == 7  # n - f - 2

    def test_multi_krum_selection_size_capped_by_override(self):
        rule = MultiKrum(num_byzantine=1, num_selected=3)
        assert rule.selection_size(10) == 3

    def test_multi_krum_excludes_far_byzantine_vectors(self):
        rng = np.random.default_rng(5)
        correct = _cloud(rng, n=10, d=6, spread=0.5)
        byzantine = np.full((2, 6), 1e4)
        rule = MultiKrum(num_byzantine=2)
        indices = rule.selected_indices(np.concatenate([correct, byzantine]))
        assert all(index < 10 for index in indices)

    def test_multi_krum_with_f_zero_close_to_mean(self):
        # With f = 0, Multi-Krum averages n - 2 vectors, so it should stay
        # near the sample mean of a compact cloud.
        rng = np.random.default_rng(6)
        cloud = _cloud(rng, n=12, d=4, spread=0.2)
        out = MultiKrum(num_byzantine=0)(cloud)
        assert np.linalg.norm(out - cloud.mean(axis=0)) < 0.3

    def test_krum_f_too_large_for_n_raises(self):
        with pytest.raises(ValueError):
            krum_scores(np.zeros((4, 2)), num_byzantine=3)


class TestBulyan:
    def test_requires_4f_plus_3(self):
        rule = Bulyan(num_byzantine=1)
        assert rule.minimum_inputs() == 7
        with pytest.raises(ValueError):
            rule(np.zeros((6, 2)))

    def test_mean_when_f_zero(self):
        rng = np.random.default_rng(7)
        cloud = _cloud(rng, n=7)
        assert np.allclose(Bulyan(num_byzantine=0)(cloud), cloud.mean(axis=0))

    def test_resists_large_outliers(self):
        rng = np.random.default_rng(8)
        correct = _cloud(rng, n=8, d=5, spread=0.1)
        byzantine = np.full((1, 5), 1e6)
        out = Bulyan(num_byzantine=1)(np.concatenate([correct, byzantine]))
        assert np.linalg.norm(out) < 5.0


class TestGeometricMedian:
    def test_exact_for_symmetric_points(self):
        vectors = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        assert np.allclose(GeometricMedian()(vectors), [0.0, 0.0], atol=1e-6)

    def test_resists_outlier(self):
        correct = np.array([[0.0, 0.0], [0.5, 0.0], [0.0, 0.5]])
        byzantine = np.array([[1e6, 1e6]])
        out = GeometricMedian(num_byzantine=1)(np.concatenate([correct, byzantine]))
        assert np.linalg.norm(out) < 2.0

    def test_converges_on_collinear_points(self):
        vectors = np.array([[0.0], [1.0], [2.0], [3.0], [4.0]])
        out = GeometricMedian()(vectors)
        assert abs(float(out[0]) - 2.0) < 1e-4

    def test_convergence_diagnostics_exposed(self):
        rule = GeometricMedian(num_byzantine=1)
        assert rule.converged is None and rule.iterations == 0
        rng = np.random.default_rng(0)
        rule(rng.normal(size=(9, 16)))
        assert rule.converged is True
        assert 0 < rule.iterations <= rule.max_iterations

    def test_unconverged_run_warns_and_reports(self):
        rule = GeometricMedian(max_iterations=2, tolerance=1e-30)
        rng = np.random.default_rng(1)
        cloud = rng.normal(size=(7, 8))
        with pytest.warns(RuntimeWarning, match="did not converge"):
            out = rule(cloud)
        assert rule.converged is False
        assert rule.iterations == 2
        assert np.all(np.isfinite(out))

    def test_coincident_estimate_converges_immediately(self):
        vectors = np.array([[1.0, 2.0]] * 5)
        rule = GeometricMedian()
        out = rule(vectors)
        assert np.allclose(out, [1.0, 2.0])
        assert rule.converged is True


class TestRegistry:
    def test_all_rules_registered(self):
        names = available_rules()
        for expected in ("mean", "median", "krum", "multi_krum", "bulyan",
                         "trimmed_mean", "geometric_median", "marginal_median"):
            assert expected in names

    def test_get_rule_instantiates_with_f(self):
        rule = get_rule("multi_krum", num_byzantine=3)
        assert isinstance(rule, MultiKrum)
        assert rule.num_byzantine == 3

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("average_of_best_friends")

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            CoordinateWiseMedian(num_byzantine=-1)
