"""Tests for the adaptive adversary engine (repro.adversary)."""

import threading

import numpy as np
import pytest

from repro.adversary import (
    AdversaryCoordinator,
    AdversaryWorkerAttack,
    CollusionAdversary,
    ObservationTimeout,
    OmniscientDescentAdversary,
    OscillatingAdversary,
    RoundObservation,
    RoundPlan,
    SleeperAdversary,
    StatelessAdversary,
    available_adversaries,
    build_adversary_attacks,
    get_adversary,
    make_binding,
)
from repro.byzantine import AttackContext, SignFlipAttack, available_attacks
from repro.campaign.spec import AdversarySpec, ScenarioSpec


def _binding(adversary, num_workers=6, num_byzantine=2, seed=7):
    worker_ids = [f"worker/{i}" for i in range(num_workers)]
    server_ids = [f"ps/{i}" for i in range(3)]
    return make_binding(
        adversary, seed=seed, worker_ids=worker_ids, server_ids=server_ids,
        num_attacking_workers=num_byzantine, num_attacking_servers=0,
        gradient_rule_name="multi_krum", declared_byzantine_workers=num_byzantine,
        declared_byzantine_servers=0, gradient_quorum=num_workers,
        model_quorum=3)


def _observation(step=0, gradients=None, seed=1, count=7):
    gradients = gradients if gradients is not None else [
        np.full(4, float(i + 1)) for i in range(count)]
    return RoundObservation(step=step, honest_gradients=gradients,
                            rng=np.random.default_rng(seed))


class TestRegistry:
    def test_native_adversaries_registered(self):
        names = available_adversaries()
        assert {"omniscient_descent", "collusion", "sleeper",
                "oscillating"} <= set(names)

    def test_legacy_attack_names_wrap_as_stateless(self):
        adversary = get_adversary("sign_flip")
        assert isinstance(adversary, StatelessAdversary)
        assert adversary.name == "sign_flip"
        assert adversary.attacks_workers and not adversary.attacks_servers

    def test_server_attack_wraps_with_server_side(self):
        adversary = get_adversary("corrupted_model", noise_scale=5.0)
        assert adversary.attacks_servers and not adversary.attacks_workers

    def test_unknown_name_raises_with_both_registries(self):
        with pytest.raises(KeyError, match="wrappable attacks"):
            get_adversary("nope")

    def test_native_names_do_not_collide_with_attacks(self):
        assert not set(available_adversaries()) & set(available_attacks())


class TestRoundPlan:
    def test_explicit_payload_and_silence(self):
        vector = np.ones(3)
        plan = RoundPlan(payloads={"worker/5": vector, "worker/4": None})
        honest = np.full(3, 2.0)
        assert plan.payload_for("worker/5", honest) is vector
        assert plan.payload_for("worker/4", honest) is None

    def test_fallbacks(self):
        honest = np.full(3, 2.0)
        assert np.array_equal(RoundPlan().payload_for("w", honest), honest)
        scaled = RoundPlan(fallback_scale=-4.0).payload_for("w", honest)
        assert np.array_equal(scaled, -4.0 * honest)


class TestOmniscientDescent:
    def test_plan_is_collusive_and_deterministic(self):
        results = []
        for _ in range(2):
            adversary = OmniscientDescentAdversary(num_amplitudes=4)
            adversary.bind(_binding(adversary, num_workers=9))
            plan = adversary.plan_round(_observation())
            results.append(plan)
        byzantine = ["worker/7", "worker/8"]
        for plan in results:
            assert set(plan.payloads) == set(byzantine)
            assert np.array_equal(plan.payloads[byzantine[0]],
                                  plan.payloads[byzantine[1]])
        assert np.array_equal(results[0].payloads["worker/7"],
                              results[1].payloads["worker/7"])

    def test_attack_moves_aggregate_against_descent(self):
        adversary = OmniscientDescentAdversary(num_amplitudes=6)
        binding = _binding(adversary, num_workers=9)
        adversary.bind(binding)
        observation = _observation(
            gradients=[np.full(4, 1.0) + 0.1 * np.arange(4) * i
                       for i in range(1, 8)])
        plan = adversary.plan_round(observation)
        vector = plan.payloads["worker/8"]
        honest = np.stack(observation.honest_gradients)
        mean = honest.mean(axis=0)
        attacked = binding.gradient_rule(
            np.concatenate([np.tile(vector, (2, 1)), honest]))
        clean = binding.gradient_rule(honest)
        assert np.dot(attacked, mean) < np.dot(clean, mean)

    def test_no_observation_falls_back_to_reversal(self):
        adversary = OmniscientDescentAdversary(max_amplitude=3.0)
        adversary.bind(_binding(adversary))
        plan = adversary.plan_round(RoundObservation(step=0))
        honest = np.ones(4)
        assert np.array_equal(plan.payload_for("worker/5", honest),
                              -3.0 * honest)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OmniscientDescentAdversary(max_amplitude=0.0)
        with pytest.raises(ValueError):
            OmniscientDescentAdversary(num_amplitudes=1)


class TestCollusion:
    def test_single_crafted_vector_for_all_nodes(self):
        adversary = CollusionAdversary(attack="little_is_enough",
                                       attack_kwargs={"z_factor": 2.0})
        adversary.bind(_binding(adversary))
        plan = adversary.plan_round(_observation())
        assert plan.payloads["worker/4"] is plan.payloads["worker/5"]
        stacked = np.stack(_observation().honest_gradients)
        expected = stacked.mean(axis=0) - 2.0 * stacked.std(axis=0)
        assert np.allclose(plan.payloads["worker/4"], expected)

    def test_rejects_server_attack_as_inner(self):
        with pytest.raises(ValueError, match="server attack"):
            CollusionAdversary(attack="corrupted_model")


class TestTimeCoupling:
    def test_sleeper_honest_then_active(self):
        adversary = SleeperAdversary(wake_step=3, sleep_step=5,
                                     inner="collusion")
        adversary.bind(_binding(adversary))
        for step, active in [(0, False), (2, False), (3, True), (4, True),
                             (5, False), (9, False)]:
            plan = adversary.plan_round(_observation(step=step))
            honest = np.full(4, 5.0)
            payload = plan.payload_for("worker/5", honest)
            if active:
                assert not np.array_equal(payload, honest)
            else:
                assert np.array_equal(payload, honest)

    def test_sleeper_validates_window(self):
        with pytest.raises(ValueError):
            SleeperAdversary(wake_step=5, sleep_step=5)
        with pytest.raises(ValueError):
            SleeperAdversary(wake_step=-1)

    def test_oscillating_duty_cycle(self):
        adversary = OscillatingAdversary(period=2, inner="sign_flip")
        assert [adversary._active(step) for step in range(6)] == \
            [False, False, True, True, False, False]
        flipped = OscillatingAdversary(period=2, start_active=True,
                                       inner="sign_flip")
        assert flipped._active(0) and not flipped._active(2)

    def test_gated_stateless_inner_delegates_per_call(self):
        adversary = SleeperAdversary(wake_step=1, inner="sign_flip")
        adversary.bind(_binding(adversary))
        assert adversary.requires_observation is False
        honest = np.array([1.0, -2.0])
        asleep = AttackContext(step=0, honest_value=honest)
        awake = AttackContext(step=1, honest_value=honest)
        assert np.array_equal(adversary.worker_gradient(asleep), honest)
        assert np.array_equal(adversary.worker_gradient(awake), -honest)

    def test_time_coupled_adversaries_cannot_nest(self):
        with pytest.raises(ValueError, match="nest"):
            SleeperAdversary(inner="oscillating")


class TestStatelessWrapper:
    def test_bitwise_identical_to_legacy_seam(self):
        attack = SignFlipAttack()
        adversary = StatelessAdversary(SignFlipAttack())
        context = AttackContext(step=0, honest_value=np.arange(4.0),
                                rng=np.random.default_rng(0))
        assert np.array_equal(adversary.worker_gradient(context),
                              attack.corrupt_gradient(context))

    def test_rejects_non_attacks(self):
        with pytest.raises(TypeError):
            StatelessAdversary(object())


class TestCoordinator:
    def test_rebinding_is_rejected(self):
        adversary = CollusionAdversary()
        adversary.bind(_binding(adversary))
        with pytest.raises(RuntimeError, match="already bound"):
            AdversaryCoordinator(adversary, _binding(CollusionAdversary()))

    def test_plan_cached_per_step(self):
        adversary = CollusionAdversary()
        coordinator = AdversaryCoordinator(adversary, _binding(adversary))
        peers = [np.full(4, float(i)) for i in range(1, 4)]
        contexts = [AttackContext(step=2, honest_value=np.zeros(4),
                                  peer_values=peers) for _ in range(2)]
        first = coordinator.worker_gradient("worker/4", contexts[0])
        # Second call must reuse the cached plan even with no peers visible.
        second = coordinator.worker_gradient(
            "worker/5", AttackContext(step=2, honest_value=np.zeros(4)))
        assert np.array_equal(first, second)

    def test_board_mode_blocks_until_observation_complete(self):
        adversary = CollusionAdversary()
        binding = _binding(adversary, num_workers=4, num_byzantine=1)
        coordinator = AdversaryCoordinator(adversary, binding)
        coordinator.enable_board(lambda step: binding.honest_workers(),
                                 timeout=5.0)
        outputs = []

        def byzantine():
            context = AttackContext(step=0, honest_value=np.zeros(3))
            outputs.append(coordinator.worker_gradient("worker/3", context))

        thread = threading.Thread(target=byzantine)
        thread.start()
        for index, worker_id in enumerate(binding.honest_workers()):
            coordinator.publish(worker_id, 0, np.full(3, float(index + 1)))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        gradients = np.stack([np.full(3, float(i + 1)) for i in range(3)])
        expected = gradients.mean(axis=0) - 1.5 * gradients.std(axis=0)
        assert np.allclose(outputs[0], expected)

    def test_plans_retained_for_lagging_byzantine_workers(self):
        """Pruning keys off the *slowest* controlled worker's step.

        If retention followed the newest plan, a Byzantine worker lagging
        more than the retention window behind its fast peer would find
        neither plan nor board for its step and starve (the honest workers
        never republish old gradients).
        """
        adversary = CollusionAdversary()
        coordinator = AdversaryCoordinator(adversary, _binding(adversary))
        peers = [np.full(4, float(i)) for i in range(1, 4)]

        def query(node_id, step):
            return coordinator.worker_gradient(
                node_id, AttackContext(step=step, honest_value=np.zeros(4),
                                       peer_values=peers))

        # The fast worker races 10 steps ahead of its peer.
        fast = {step: query("worker/5", step) for step in range(10)}
        # The lagging worker still gets the cached plans, bit-identical.
        for step in range(10):
            np.testing.assert_array_equal(query("worker/4", step),
                                          fast[step])
        # Once both workers passed a step, old plans are pruned.
        assert min(coordinator._plans) >= 10 - 1 - 4  # retention window

    def test_memory_bounded_when_a_controlled_worker_never_queries(self):
        """A crashed Byzantine worker must not pin retention forever.

        With one controlled worker never querying (e.g. crashed by a fault
        schedule), plans still get pruned once the skew exceeds the hard
        retention bound, so long runs stay bounded.
        """
        from repro.adversary.engine import (
            _PLAN_HARD_RETENTION_STEPS,
            _PLAN_RETENTION_STEPS,
        )

        adversary = CollusionAdversary()
        coordinator = AdversaryCoordinator(adversary, _binding(adversary))
        peers = [np.full(4, float(i)) for i in range(1, 4)]
        total = _PLAN_HARD_RETENTION_STEPS + 40
        for step in range(total):  # worker/4 never queries
            coordinator.worker_gradient(
                "worker/5", AttackContext(step=step, honest_value=np.zeros(4),
                                          peer_values=peers))
        bound = _PLAN_HARD_RETENTION_STEPS + _PLAN_RETENTION_STEPS + 1
        assert len(coordinator._plans) <= bound

    def test_query_below_pruned_horizon_degrades_instead_of_timing_out(self):
        """An extreme straggler gets the fallback plan, not a dead run.

        Once a step's board entries fell past the hard-retention horizon
        the honest gradients will never be republished — waiting can only
        end in ObservationTimeout, so the coordinator must serve the
        no-observation fallback immediately.
        """
        from repro.adversary.engine import _PLAN_HARD_RETENTION_STEPS

        adversary = CollusionAdversary()
        binding = _binding(adversary, num_workers=5, num_byzantine=2)
        coordinator = AdversaryCoordinator(adversary, binding)
        coordinator.enable_board(lambda step: binding.honest_workers(),
                                 timeout=0.5)
        far_ahead = _PLAN_HARD_RETENTION_STEPS + 20
        for worker_id in binding.honest_workers():
            coordinator.publish(worker_id, far_ahead, np.ones(3))
        coordinator.worker_gradient(
            "worker/4", AttackContext(step=far_ahead,
                                      honest_value=np.zeros(3)))
        # worker/3 straggles below the pruned horizon: no timeout, the
        # collusion fallback (scaled reversal) is served instead.
        honest = np.full(3, 2.0)
        value = coordinator.worker_gradient(
            "worker/3", AttackContext(step=0, honest_value=honest))
        np.testing.assert_array_equal(value, -1.0 * honest)

    def test_dormant_gated_adversary_skips_the_board_wait(self):
        """During a sleeper's honest window no observation is needed.

        With the board armed but nothing published, a dormant-step query
        must return the honest plan immediately instead of blocking until
        timeout — Byzantine threads must not stall honest rounds they will
        not even corrupt.
        """
        adversary = SleeperAdversary(wake_step=50, inner="collusion")
        binding = _binding(adversary, num_workers=4, num_byzantine=1)
        coordinator = AdversaryCoordinator(adversary, binding)
        coordinator.enable_board(lambda step: binding.honest_workers(),
                                 timeout=0.2)
        honest = np.full(3, 2.0)
        value = coordinator.worker_gradient(
            "worker/3", AttackContext(step=0, honest_value=honest))
        np.testing.assert_array_equal(value, honest)  # and no timeout

    def test_board_timeout_raises(self):
        adversary = CollusionAdversary()
        binding = _binding(adversary, num_workers=4, num_byzantine=1)
        coordinator = AdversaryCoordinator(adversary, binding)
        coordinator.enable_board(lambda step: binding.honest_workers(),
                                 timeout=0.05)
        with pytest.raises(ObservationTimeout):
            coordinator.worker_gradient(
                "worker/3", AttackContext(step=0, honest_value=np.zeros(3)))

    def test_build_adversary_attacks_assigns_adapters(self):
        adversary = CollusionAdversary()
        binding = _binding(adversary)
        coordinator, workers, servers = build_adversary_attacks(adversary,
                                                                binding)
        assert isinstance(workers["worker/5"], AdversaryWorkerAttack)
        assert workers["worker/0"] is None
        assert all(attack is None for attack in servers.values())
        assert workers["worker/5"].coordinator is coordinator


class TestAdversarySpec:
    def test_round_trip_and_coercion(self):
        spec = ScenarioSpec(adversary="collusion")
        assert isinstance(spec.adversary, AdversarySpec)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.adversary == spec.adversary

    def test_json_round_trip_with_kwargs(self):
        spec = ScenarioSpec(adversary={
            "name": "sleeper",
            "kwargs": {"wake_step": 4, "inner": "collusion",
                       "inner_kwargs": {"attack": "sign_flip"}}})
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.adversary.kwargs["inner_kwargs"] == {"attack": "sign_flip"}
        clone.validate()

    def test_absent_adversary_keeps_legacy_hash(self):
        spec = ScenarioSpec()
        payload = spec.to_dict()
        assert payload["adversary"] is None
        del payload["adversary"]  # a pre-adversary-era stored spec
        assert ScenarioSpec.from_dict(payload).spec_hash() == spec.spec_hash()
        assert ScenarioSpec.from_dict(payload).batch_group_hash() == \
            spec.batch_group_hash()

    def test_adversary_changes_hash(self):
        assert ScenarioSpec(adversary="collusion").spec_hash() != \
            ScenarioSpec().spec_hash()

    def test_validation_rejects_mixing_with_legacy_attacks(self):
        with pytest.raises(ValueError, match="not both"):
            ScenarioSpec(adversary="collusion",
                         worker_attack="sign_flip").validate()

    def test_validation_rejects_unknown_adversary(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            ScenarioSpec(adversary="nope").validate()

    def test_validation_rejects_bad_kwargs(self):
        with pytest.raises(ValueError, match="invalid kwargs"):
            ScenarioSpec(adversary={"name": "collusion",
                                    "kwargs": {"bogus": 1}}).validate()

    def test_validation_rejects_single_server_trainers(self):
        with pytest.raises(ValueError, match="single-server"):
            ScenarioSpec(trainer="vanilla", adversary="collusion").validate()

    def test_resolved_counts_follow_adversary_sides(self):
        worker_side = ScenarioSpec(adversary="collusion")
        assert worker_side.resolved_num_attacking_workers() == \
            worker_side.declared_byzantine_workers
        assert worker_side.resolved_num_attacking_servers() == 0
        server_side = ScenarioSpec(adversary="corrupted_model")
        assert server_side.resolved_num_attacking_workers() == 0
        assert server_side.resolved_num_attacking_servers() == \
            server_side.declared_byzantine_servers

    def test_validate_accepts_every_native_adversary(self):
        for name in available_adversaries():
            ScenarioSpec(adversary=name).validate()
